package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"chronos/internal/obs"
	"chronos/internal/tenant"
)

// Fleet-exact tenant budgets. With escrow enabled, exactly one replica — the
// ring owner of the tenant key "tenant:<name>" — holds a tenant's
// authoritative pool. The owner debits it directly (WAL-logged when a Store
// is configured); every other replica debits a local lock-free Lease funded
// by escrow grants leased from the owner over POST /v1/escrow/lease. Because
// a grant debits the pool before the lease is funded, the budget spendable
// anywhere in the fleet never exceeds the configured pool budget — the
// over-commit window of the old per-replica approximation (N replicas, each
// with a full copy of the pool) is gone by construction.
//
// The serving path stays lock-free: a local lease debit is one CAS. Owner
// round trips happen only when a lease runs dry (synchronous top-up, traced
// as the escrow stage) and in the background renew loop, which batches the
// spent report and the next top-up into one request.

// tenantKeyPrefix namespaces tenant ownership keys on the plan-key ring.
const tenantKeyPrefix = "tenant:"

// escrowPath is the internal lease API every replica serves.
const escrowPath = "/v1/escrow/lease"

// escrowLeaseRequest is the wire form of one lease call: acknowledge spent,
// ask for want more escrow, or end the lease (release).
type escrowLeaseRequest struct {
	Tenant string `json:"tenant"`
	// Holder is the requesting replica's self URL — the lease identity the
	// owner tracks and reclaims by.
	Holder  string  `json:"holder"`
	Spent   float64 `json:"spent,omitempty"`
	Want    float64 `json:"want,omitempty"`
	Release bool    `json:"release,omitempty"`
}

type escrowLeaseResponse struct {
	// Granted is the escrow actually debited from the pool for this lease —
	// possibly less than want when the pool is low, zero when dry.
	Granted float64 `json:"granted"`
	// PoolRemaining is the owner pool's post-grant level.
	PoolRemaining float64 `json:"poolRemaining"`
	// TTLMillis is the lease lifetime; the holder must renew within it.
	TTLMillis int64 `json:"ttlMillis"`
}

// escrowManager is one replica's escrow state: the owner-side ledger for
// tenants this replica owns, and the holder-side leases for tenants it does
// not. Ring membership is consulted per request, so ownership follows
// SetRing reloads without any manager-side swap.
type escrowManager struct {
	srv *Server
	led *tenant.EscrowLedger

	mu     sync.Mutex
	leases map[string]*tenant.Lease // holder side, by tenant name

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

func newEscrowManager(s *Server, led *tenant.EscrowLedger) *escrowManager {
	return &escrowManager{
		srv:    s,
		led:    led,
		leases: make(map[string]*tenant.Lease),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// ownsTenant reports whether this replica is the tenant's pool owner (true
// whenever sharding is off: a solo replica owns everything).
func (m *escrowManager) ownsTenant(name string) bool {
	owner, local := m.tenantOwner(name)
	return local || owner == ""
}

// tenantOwner resolves the tenant's pool owner: local == true means this
// replica (or sharding is off); otherwise owner is the peer's base URL.
func (m *escrowManager) tenantOwner(name string) (owner string, local bool) {
	rs := m.srv.ringSt.Load()
	if rs == nil {
		return "", true
	}
	owner, ok := rs.ring.Owner(tenantKeyPrefix + name)
	if !ok || owner == rs.self {
		return "", true
	}
	return owner, false
}

// lease returns the holder-side lease for tenant, creating it on first use.
func (m *escrowManager) lease(name string) *tenant.Lease {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.leases[name]
	if !ok {
		l = &tenant.Lease{}
		m.leases[name] = l
	}
	return l
}

// leaseTarget is the escrow a holder aims to keep on hand: a fraction of the
// tenant's total budget, so N holders plus the owner cannot strand most of
// the pool inside idle leases.
func (m *escrowManager) leaseTarget(pool *tenant.Pool) float64 {
	return pool.Limits().Budget * m.srv.cfg.EscrowLeaseFraction
}

// budgetFor returns the debit interface the serving path uses for one
// tenant-routed request: the WAL-logged authoritative pool when this replica
// owns the tenant, the local lease (with synchronous owner top-ups) when it
// does not.
func (m *escrowManager) budgetFor(ctx context.Context, name string, pool *tenant.Pool) budgeter {
	owner, local := m.tenantOwner(name)
	if local {
		return &ownerBudget{led: m.led, name: name, pool: pool}
	}
	return &leaseBudget{m: m, ctx: ctx, name: name, owner: owner, pool: pool, lease: m.lease(name)}
}

// budgeter is the serving path's debit interface. Remaining is the budget a
// plan may be squeezed into; TryDebit is the atomic admit-time deduction.
// *tenant.Pool satisfies it (the escrow-off legacy path).
type budgeter interface {
	Remaining() float64
	TryDebit(cost float64) (ok bool, remaining float64)
}

// ownerBudget debits the authoritative pool through the escrow ledger, so
// every owner-side debit shares the WAL with grants and releases.
type ownerBudget struct {
	led  *tenant.EscrowLedger
	name string
	pool *tenant.Pool
}

func (b *ownerBudget) Remaining() float64 { return b.pool.Remaining() }

func (b *ownerBudget) TryDebit(cost float64) (bool, float64) {
	return b.led.DebitLocal(b.name, cost)
}

// leaseBudget debits the holder-side lease, topping it up synchronously from
// the owner when it runs dry. A failed top-up (owner unreachable, pool dry)
// fails the debit — the fleet under-admits during an owner outage, it never
// over-commits.
type leaseBudget struct {
	m     *escrowManager
	ctx   context.Context
	name  string
	owner string
	pool  *tenant.Pool
	lease *tenant.Lease
}

func (b *leaseBudget) Remaining() float64 {
	lvl := b.lease.Level()
	// Top up before reporting a nearly-dry lease, so the admit path squeezes
	// plans against real fleet-wide headroom, not lease-refill timing.
	if target := b.m.leaseTarget(b.pool); lvl < target/2 {
		if b.m.topUp(b.ctx, b.name, b.owner, b.pool, b.lease, target-lvl) {
			lvl = b.lease.Level()
		}
	}
	return lvl
}

func (b *leaseBudget) TryDebit(cost float64) (bool, float64) {
	if ok, rem := b.lease.TryDebit(cost); ok {
		return true, rem
	}
	want := b.m.leaseTarget(b.pool)
	if cost > want {
		want = cost
	}
	if !b.m.topUp(b.ctx, b.name, b.owner, b.pool, b.lease, want) {
		return false, b.lease.Level()
	}
	return b.lease.TryDebit(cost)
}

// topUp performs one synchronous lease call to the owner: report the spend
// accumulated since the last call, ask for want more escrow, fund the lease
// with whatever was granted. Returns false when nothing was granted (owner
// unreachable, circuit open, or pool dry).
func (m *escrowManager) topUp(ctx context.Context, name, owner string, pool *tenant.Pool, lease *tenant.Lease, want float64) bool {
	tr := obs.FromContext(ctx)
	start := time.Now()
	defer func() { tr.Observe(obs.StageEscrow, time.Since(start)) }()
	resp, err := m.leaseCall(ctx, owner, escrowLeaseRequest{
		Tenant: name,
		Spent:  lease.TakeSpent(),
		Want:   want,
	}, lease)
	if err != nil || resp.Granted <= 0 {
		return false
	}
	lease.Fund(resp.Granted)
	m.srv.metrics.escrowCount(m.srv.metrics.escrowTopups, name)
	return true
}

// leaseCall issues one POST /v1/escrow/lease to the owner, routing through
// the owner's circuit breaker so a dead owner costs one timeout per cooldown,
// not one per admit. The spent amount inside req is refunded to the lease's
// unreported accumulator on failure, so a lost report is carried by the next
// call instead of dropped.
func (m *escrowManager) leaseCall(ctx context.Context, owner string, req escrowLeaseRequest, lease *tenant.Lease) (escrowLeaseResponse, error) {
	var out escrowLeaseResponse
	refund := func() {
		if lease != nil {
			lease.Refund(req.Spent)
		}
	}
	rs := m.srv.ringSt.Load()
	var brk *breaker
	if rs != nil {
		if p := rs.peers[owner]; p != nil {
			brk = &p.breaker
		}
		req.Holder = rs.self
	}
	if req.Holder == "" || owner == "" {
		refund()
		return out, errEscrowNoOwner
	}
	if brk != nil && !brk.allow() {
		refund()
		return out, errEscrowCircuitOpen
	}
	body, err := json.Marshal(req)
	if err != nil {
		refund()
		return out, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		owner+escrowPath, bytes.NewReader(body))
	if err != nil {
		refund()
		return out, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if tr := obs.FromContext(ctx); tr != nil {
		httpReq.Header.Set(obs.TraceHeader, tr.ID)
	}
	httpResp, err := m.srv.forwardClient.Do(httpReq)
	if err != nil {
		if brk != nil {
			brk.fail()
		}
		refund()
		return out, err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, maxRelayBytes))
	if err != nil || httpResp.StatusCode != http.StatusOK {
		// A non-200 is an answer (ownership disagreement, unknown tenant) —
		// the peer is alive, so only transport failures charge the breaker.
		if err != nil && brk != nil {
			brk.fail()
		}
		refund()
		if err == nil {
			err = &escrowLeaseError{status: httpResp.StatusCode, body: strings.TrimSpace(string(raw))}
		}
		return out, err
	}
	if brk != nil {
		brk.success()
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		refund()
		return out, err
	}
	return out, nil
}

type escrowLeaseError struct {
	status int
	body   string
}

func (e *escrowLeaseError) Error() string {
	return "escrow lease: owner answered " + http.StatusText(e.status) + ": " + e.body
}

var (
	errEscrowNoOwner     = &escrowLeaseError{status: 0, body: "no resolvable owner"}
	errEscrowCircuitOpen = &escrowLeaseError{status: 0, body: "owner circuit open"}
)

// handleEscrowLease serves POST /v1/escrow/lease: the owner side of the
// escrow protocol. Non-owners answer 409 with code not_owner so a holder
// racing a membership reload re-resolves instead of splitting a pool across
// two owners.
func (s *Server) handleEscrowLease(w http.ResponseWriter, r *http.Request) {
	if s.escrow == nil {
		s.apiError(w, r, http.StatusNotFound, "escrow accounting is not enabled")
		return
	}
	var req escrowLeaseRequest
	if !s.decode(w, r, &req) {
		return
	}
	tr := obs.FromContext(r.Context())
	tr.SetTenant(req.Tenant)
	if _, ok := s.lookupPool(w, r, req.Tenant); !ok {
		return
	}
	if !s.escrow.ownsTenant(req.Tenant) {
		s.writeError(w, r, http.StatusConflict, codeNotOwner,
			"this replica does not own tenant %q", req.Tenant)
		return
	}
	granted, remaining, err := s.escrow.led.Grant(
		req.Tenant, req.Holder, req.Spent, req.Want, req.Release)
	if err != nil {
		s.apiError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if granted > 0 {
		s.metrics.escrowCount(s.metrics.escrowGrants, req.Tenant)
	}
	s.writeJSON(w, r, http.StatusOK, escrowLeaseResponse{
		Granted:       granted,
		PoolRemaining: remaining,
		TTLMillis:     s.escrow.led.TTL().Milliseconds(),
	})
}

// run is the escrow background loop: holder-side lease renewal (batched
// spent report + top-up, at a third of the TTL so two consecutive failures
// still beat reclamation), owner-side reclamation of silent holders, and
// periodic snapshot compaction.
func (m *escrowManager) run() {
	defer close(m.done)
	renew := time.NewTicker(m.led.TTL() / 3)
	defer renew.Stop()
	snapshot := time.NewTicker(m.srv.cfg.EscrowSnapshotInterval)
	defer snapshot.Stop()
	var walFailsSeen uint64
	for {
		select {
		case <-m.stop:
			return
		case <-renew.C:
			m.renewLeases()
			m.reclaim()
			// A failed WAL append cannot be rolled back (the ledger mutated
			// before it logged), so silent loss is the one unacceptable
			// outcome: latch-check here and shout.
			if fails, lastErr := m.led.WALFailures(); fails > walFailsSeen {
				walFailsSeen = fails
				m.srv.logOp().Error("escrow WAL appends failing; a restart would restore stale budget levels",
					"failures", fails, "error", lastErr.Error())
			}
		case <-snapshot.C:
			if err := m.led.Compact(); err != nil {
				m.srv.logOp().Error("escrow snapshot failed", "error", err.Error())
			}
		}
	}
}

// renewLeases reports spend and tops every holder-side lease back up toward
// its target, extending its expiry at the owner.
func (m *escrowManager) renewLeases() {
	ctx, cancel := context.WithTimeout(context.Background(), m.srv.cfg.ForwardTimeout)
	defer cancel()
	reg := m.srv.tenants.Load()
	m.mu.Lock()
	names := make([]string, 0, len(m.leases))
	for name := range m.leases {
		names = append(names, name)
	}
	m.mu.Unlock()
	for _, name := range names {
		pool := reg.Get(name)
		if pool == nil {
			continue // tenant vanished in a reload; owner reclaims by TTL
		}
		owner, local := m.tenantOwner(name)
		if local {
			continue // ownership moved here; the lease drains and is GC-noise
		}
		lease := m.lease(name)
		want := m.leaseTarget(pool) - lease.Level()
		if want < 0 {
			want = 0
		}
		resp, err := m.leaseCall(ctx, owner, escrowLeaseRequest{
			Tenant: name,
			Spent:  lease.TakeSpent(),
			Want:   want,
		}, lease)
		if err != nil {
			continue
		}
		if resp.Granted > 0 {
			lease.Fund(resp.Granted)
			m.srv.metrics.escrowCount(m.srv.metrics.escrowTopups, name)
		}
	}
}

// reclaim ends owner-side leases whose holders went silent past the TTL.
func (m *escrowManager) reclaim() {
	for _, rec := range m.led.ReclaimExpired() {
		m.srv.metrics.escrowCount(m.srv.metrics.escrowReclaims, rec.Tenant)
		m.srv.logOp().Warn("escrow lease reclaimed",
			"tenant", rec.Tenant, "holder", rec.Holder, "escrow", rec.Escrow)
	}
}

// shutdown stops the loop and releases every holder-side lease back to its
// owner (final spent report + credit of the unspent escrow), then compacts
// the owner-side state into the snapshot so the next boot replays nothing.
func (m *escrowManager) shutdown() {
	m.stopOnce.Do(func() {
		close(m.stop)
		<-m.done
		ctx, cancel := context.WithTimeout(context.Background(), m.srv.cfg.ForwardTimeout)
		defer cancel()
		m.mu.Lock()
		leases := make(map[string]*tenant.Lease, len(m.leases))
		for name, l := range m.leases {
			leases[name] = l
		}
		m.mu.Unlock()
		for name, lease := range leases {
			owner, local := m.tenantOwner(name)
			if local {
				continue
			}
			_, _ = m.leaseCall(ctx, owner, escrowLeaseRequest{
				Tenant:  name,
				Spent:   lease.TakeSpent(),
				Release: true,
			}, lease)
		}
		if err := m.led.Compact(); err != nil {
			m.srv.logOp().Error("escrow final snapshot failed", "error", err.Error())
		}
	})
}

// escrowStats snapshots the gauge surface for /metrics: per-tenant
// outstanding owner-side escrow and holder-side lease levels.
func (m *escrowManager) escrowStats(reg *tenant.Registry) (outstanding map[string]float64, leaseLevels map[string]float64) {
	outstanding = make(map[string]float64)
	leaseLevels = make(map[string]float64)
	for _, p := range reg.Pools() {
		if m.ownsTenant(p.Name()) {
			_, escrow := m.led.Outstanding(p.Name())
			outstanding[p.Name()] = escrow
		}
	}
	m.mu.Lock()
	for name, l := range m.leases {
		leaseLevels[name] = l.Level()
	}
	m.mu.Unlock()
	return outstanding, leaseLevels
}
