package experiment

import (
	"fmt"

	"chronos/internal/metrics"
)

// Fig5Config parameterizes the optimal-r histogram experiment of Figure 5:
// the distribution of the optimizer's chosen r for Clone and
// Speculative-Resume at theta = 1e-5 and theta = 1e-4.
type Fig5Config struct {
	// Fig3 supplies the underlying sweep; only the two thetas and two
	// strategies of Figure 5 are consumed.
	Fig3 Fig3Config
}

// DefaultFig5Config matches the paper's pairing.
func DefaultFig5Config() Fig5Config {
	cfg := DefaultFig3Config()
	cfg.Thetas = []float64{1e-5, 1e-4}
	return Fig5Config{Fig3: cfg}
}

// Fig5Series is one histogram of Figure 5.
type Fig5Series struct {
	Strategy string
	Theta    float64
	Hist     *metrics.Histogram
}

// RunFigure5 produces the four histograms (Clone and S-Resume at each
// theta) from a Figure 3 sweep restricted to those strategies.
func RunFigure5(r Runner, cfg Fig5Config) ([]Fig5Series, error) {
	rows, err := RunFigure3(r, cfg.Fig3)
	if err != nil {
		return nil, err
	}
	var out []Fig5Series
	for _, row := range rows {
		if row.Strategy != "Clone" && row.Strategy != "Speculative-Resume" {
			continue
		}
		out = append(out, Fig5Series{Strategy: row.Strategy, Theta: row.Theta, Hist: row.RHist})
	}
	return out, nil
}

// Fig5Table renders the histograms as frequency rows.
func Fig5Table(series []Fig5Series) *metrics.Table {
	t := metrics.NewTable("Strategy", "theta", "r-histogram (r:count)", "mode")
	for _, s := range series {
		mode, _ := s.Hist.Mode()
		t.AddRow(s.Strategy,
			metrics.FormatFloat(s.Theta, 6),
			s.Hist.String(),
			fmt.Sprintf("%d", mode))
	}
	return t
}
