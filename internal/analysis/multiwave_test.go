package analysis

import (
	"math"
	"testing"

	"chronos/internal/pareto"
)

func waveParams() Params {
	return Params{
		N:        40,
		Deadline: 400,
		Task:     pareto.MustNew(10, 1.5),
		TauEst:   60,
		TauKill:  120,
	}
}

func TestWaveModelValidation(t *testing.T) {
	inner := Clone{P: waveParams()}
	if _, err := NewWaveModel(inner, 0); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := NewWaveModel(inner, 8); err != nil {
		t.Errorf("valid wave model rejected: %v", err)
	}
}

func TestWavesAtR(t *testing.T) {
	w, err := NewWaveModel(Clone{P: waveParams()}, 40)
	if err != nil {
		t.Fatal(err)
	}
	// 40 tasks, 40 slots: r=0 is one wave; r=1 doubles attempts -> 2 waves.
	if got := w.WavesAtR(0); got != 1 {
		t.Errorf("WavesAtR(0) = %d, want 1", got)
	}
	if got := w.WavesAtR(1); got != 2 {
		t.Errorf("WavesAtR(1) = %d, want 2", got)
	}
	if got := w.WavesAtR(3); got != 4 {
		t.Errorf("WavesAtR(3) = %d, want 4", got)
	}
}

func TestSingleWaveMatchesInner(t *testing.T) {
	for _, s := range Strategies() {
		inner := NewModel(s, waveParams())
		w, err := NewWaveModel(inner, 1000) // ample slots: always one wave
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r <= 4; r++ {
			if got, want := w.PoCD(r), inner.PoCD(r); got != want {
				t.Errorf("%v r=%d: wave PoCD %v != inner %v", s, r, got, want)
			}
			if got, want := w.MachineTime(r), inner.MachineTime(r); got != want {
				t.Errorf("%v r=%d: wave cost %v != inner %v", s, r, got, want)
			}
		}
	}
}

func TestMultiWavePoCDBelowSingleWave(t *testing.T) {
	// Slicing the deadline across waves can only hurt the synchronized
	// approximation.
	for _, s := range Strategies() {
		inner := NewModel(s, waveParams())
		constrained, err := NewWaveModel(inner, 20) // half the tasks fit per wave
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r <= 3; r++ {
			if constrained.PoCD(r) > inner.PoCD(r)+1e-12 {
				t.Errorf("%v r=%d: constrained PoCD %v above unconstrained %v",
					s, r, constrained.PoCD(r), inner.PoCD(r))
			}
		}
	}
}

func TestMultiWaveDegenerateSlice(t *testing.T) {
	// With many waves the per-wave deadline drops below tmin: PoCD 0.
	p := waveParams()
	w, err := NewWaveModel(Clone{P: p}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.PoCD(0); got != 0 {
		t.Errorf("40-wave PoCD = %v, want 0 (slice below tmin)", got)
	}
	// Cost stays finite and positive.
	if mt := w.MachineTime(0); mt <= 0 || math.IsInf(mt, 0) {
		t.Errorf("degenerate wave MachineTime = %v", mt)
	}
}

func TestWaveModelInterface(t *testing.T) {
	w, err := NewWaveModel(Resume{P: waveParams()}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "Speculative-Resume (multi-wave)" {
		t.Errorf("Name() = %q", w.Name())
	}
	if w.Params() != waveParams() {
		t.Error("Params() does not round-trip")
	}
	if g := w.Gamma(); math.IsNaN(g) {
		t.Errorf("Gamma() = %v", g)
	}
}

func TestWaveGammaConservative(t *testing.T) {
	inner := Clone{P: waveParams()}
	w, err := NewWaveModel(inner, 20)
	if err != nil {
		t.Fatal(err)
	}
	if w.Gamma() < inner.Gamma() {
		t.Errorf("wave Gamma %v below inner %v (must be conservative)", w.Gamma(), inner.Gamma())
	}
}

func TestSlotsForWaves(t *testing.T) {
	// 40 tasks at r=1 (80 attempts): single wave needs 80 slots, two waves
	// need 40.
	if got := SlotsForWaves(40, 1, 1); got != 80 {
		t.Errorf("SlotsForWaves(40,1,1) = %d, want 80", got)
	}
	if got := SlotsForWaves(40, 1, 2); got != 40 {
		t.Errorf("SlotsForWaves(40,1,2) = %d, want 40", got)
	}
	if got := SlotsForWaves(40, 0, 3); got != 14 {
		t.Errorf("SlotsForWaves(40,0,3) = %d, want 14", got)
	}
	if got := SlotsForWaves(10, 0, 0); got != 10 {
		t.Errorf("SlotsForWaves with waves=0 clamps to 1: got %d", got)
	}
}

// TestWaveModelAgainstDES cross-checks the synchronized-wave PoCD bound
// against a slot-constrained discrete-event run: the DES (overlapping
// waves) must do at least as well as the synchronized approximation.
// The DES side lives in internal/speculate's tests; here we check the
// monotonicity that underpins the bound: more slots never hurt.
func TestWaveMoreSlotsNeverHurt(t *testing.T) {
	inner := Clone{P: waveParams()}
	prev := -1.0
	for _, slots := range []int{10, 20, 40, 80, 160} {
		w, err := NewWaveModel(inner, slots)
		if err != nil {
			t.Fatal(err)
		}
		got := w.PoCD(1)
		if got < prev-1e-12 {
			t.Errorf("PoCD dropped from %v to %v when slots grew to %d", prev, got, slots)
		}
		prev = got
	}
}
