// Command chronos-trace generates, inspects, and converts synthetic
// Google-like job traces in the CSV schema consumed by the simulator.
//
// Usage:
//
//	chronos-trace -gen -jobs 2700 -horizon 108000 -out trace.csv
//	chronos-trace -summarize trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"chronos/internal/trace"
)

func main() {
	var (
		gen       = flag.Bool("gen", false, "generate a synthetic trace")
		jobs      = flag.Int("jobs", 270, "jobs to generate")
		horizon   = flag.Float64("horizon", 3*3600, "arrival horizon (seconds)")
		ratio     = flag.Float64("deadline-ratio", 2, "deadline as a multiple of mean task time")
		seed      = flag.Uint64("seed", 1, "generator seed")
		out       = flag.String("out", "", "output CSV path (default stdout)")
		summarize = flag.String("summarize", "", "CSV trace to summarize")
	)
	flag.Parse()
	if err := run(*gen, *jobs, *horizon, *ratio, *seed, *out, *summarize); err != nil {
		fmt.Fprintln(os.Stderr, "chronos-trace:", err)
		os.Exit(1)
	}
}

func run(gen bool, jobs int, horizon, ratio float64, seed uint64, out, summarize string) error {
	switch {
	case gen:
		cfg := trace.DefaultGeneratorConfig()
		cfg.Jobs = jobs
		cfg.Horizon = horizon
		cfg.DeadlineRatio = ratio
		cfg.Seed = seed
		records, err := trace.Generate(cfg)
		if err != nil {
			return err
		}
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return trace.WriteCSV(w, records)

	case summarize != "":
		f, err := os.Open(summarize)
		if err != nil {
			return err
		}
		defer f.Close()
		records, err := trace.ReadCSV(f)
		if err != nil {
			return err
		}
		printSummary(records)
		return nil

	default:
		return fmt.Errorf("nothing to do: pass -gen or -summarize FILE")
	}
}

func printSummary(records []trace.JobRecord) {
	if len(records) == 0 {
		fmt.Println("empty trace")
		return
	}
	tasks := make([]int, len(records))
	var lastArrival float64
	for i, r := range records {
		tasks[i] = r.NumTasks
		if r.Arrival > lastArrival {
			lastArrival = r.Arrival
		}
	}
	sort.Ints(tasks)
	total := trace.TotalTasks(records)
	fmt.Printf("jobs:          %d\n", len(records))
	fmt.Printf("tasks:         %d (min %d, median %d, max %d)\n",
		total, tasks[0], tasks[len(tasks)/2], tasks[len(tasks)-1])
	fmt.Printf("span:          %.1f h\n", lastArrival/3600)
	fmt.Printf("mean job size: %.1f tasks\n", float64(total)/float64(len(records)))
}
