// Command chronosd runs the online speculation-planning service: an HTTP
// JSON API over the Chronos PoCD/cost optimization, with a sharded plan
// cache, a bounded optimization worker pool, multi-tenant budget pools,
// Prometheus metrics, and graceful shutdown on SIGINT/SIGTERM.
//
// Usage:
//
//	chronosd [-addr :8080] [-cache-capacity 4096] [-cache-shards 16]
//	         [-workers N] [-max-body 1048576] [-shutdown-grace 10s]
//	         [-tenants tenants.json]
//	         [-self http://host:port -peers url1,url2,... | -ring ring.json]
//	         [-heartbeat-interval 1s] [-suspect-after 3] [-replication 1]
//	         [-escrow] [-data-dir /var/lib/chronosd]
//	         [-escrow-lease-ttl 15s] [-escrow-lease-fraction 0.1]
//	         [-snapshot-interval 30s]
//	         [-log-level info] [-log-sample 1] [-debug-addr 127.0.0.1:6060]
//
// Endpoints:
//
//	POST /v1/plan        optimal plan for one job (cached hot path)
//	POST /v1/plan/batch  shared-budget allocation across a job batch
//	POST /v1/admit       online admission control against a tenant budget pool
//	GET  /v1/tradeoff    PoCD/cost frontier for one strategy
//	POST /v1/simulate    bounded discrete-event what-if run (one JSON report)
//	POST /v1/replay      streaming trace replay: NDJSON per-job events, with
//	                     optional server-side trace generation and tenant
//	                     budget debiting
//	GET  /metrics        Prometheus text metrics
//	GET  /healthz        liveness probe
//	GET  /debug/traces   slowest recent request traces with stage breakdowns
//
// Every request carries a trace ID (honored from X-Chronosd-Trace-Id or
// minted) that is stamped on the response, propagated across forward hops,
// and attached to the sampled JSON request log lines (-log-level,
// -log-sample). With -debug-addr a second listener serves /debug/pprof/ and
// /debug/traces, so profiling never shares the serving listener.
//
// With -self/-peers (or a -ring membership file), the replica joins a
// consistent-hash ring over the fleet: /v1/plan and /v1/admit requests whose
// plan key another replica owns are proxied there, so the fleet's LRU caches
// partition the keyspace instead of overlapping. An unreachable owner
// degrades to local computation (per-peer circuit breaking with a single
// half-open probe per cooldown), never to a failed request.
//
// The fleet is self-managing: every -heartbeat-interval each replica probes
// its peers' /healthz, evicts a member from its effective ring view after
// -suspect-after consecutive failures, and re-admits it once probes recover
// (warm-handing the remapped cache entries back). With -replication R > 1
// the owner of each plan key pushes hot cache entries to the key's next R-1
// ring successors, so a forward that finds the owner dead is served warm
// from a replica instead of recomputing cold.
//
// With -escrow, tenant budgets are fleet-exact instead of per-replica: the
// ring owner of each tenant key holds the authoritative pool and every other
// replica debits a local lease topped up over the internal /v1/escrow/lease
// API, so concurrent admits across the whole fleet can never over-commit a
// pool. -data-dir makes the ledger durable (periodic snapshot + append-only
// WAL, replayed on boot) and persists the hot plan cache across restarts; a
// booting ring member also bulk-fetches the plans it owns from its peers.
//
// SIGHUP re-reads the -tenants and -ring config files: tenant reloads carry
// live ledger levels over for pools whose budget shape is unchanged and
// flush the plan cache; ring reloads swap the membership atomically. A
// failed reload keeps the previous configuration.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chronos/internal/obs"
	"chronos/internal/ring"
	"chronos/internal/server"
	"chronos/internal/tenant"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		cacheCapacity = flag.Int("cache-capacity", 4096, "total cached plans across shards (negative disables)")
		cacheShards   = flag.Int("cache-shards", 16, "plan cache shard count (rounded up to a power of two)")
		workers       = flag.Int("workers", 0, "max concurrent optimizations (0 = GOMAXPROCS)")
		maxBody       = flag.Int64("max-body", 1<<20, "request body limit in bytes")
		maxBatch      = flag.Int("max-batch-jobs", 1024, "jobs accepted per /v1/plan/batch call")
		maxSimJobs    = flag.Int("max-sim-jobs", 500, "jobs accepted per /v1/simulate call")
		maxSimTasks   = flag.Int("max-sim-tasks", 5000, "tasks per simulated job")
		maxSimTotal   = flag.Int("max-sim-total-tasks", 50000, "total tasks per /v1/simulate call")
		maxReplay     = flag.Int("max-replay-jobs", 100000, "jobs per /v1/replay stream")
		maxActive     = flag.Int("max-active-replays", 4, "concurrently running /v1/replay streams")
		readTimeout   = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout  = flag.Duration("write-timeout", 60*time.Second, "HTTP write timeout")
		grace         = flag.Duration("shutdown-grace", 10*time.Second, "graceful drain budget on shutdown")
		tenantsPath   = flag.String("tenants", "", "tenant budget-pool config file (JSON); SIGHUP reloads it")
		self          = flag.String("self", "", "this replica's base URL in the consistent-hash ring")
		peers         = flag.String("peers", "", "comma-separated fleet base URLs (ring membership)")
		ringPath      = flag.String("ring", "", "ring membership file (JSON {self, peers}); SIGHUP reloads it")
		forwardTO     = flag.Duration("forward-timeout", 2*time.Second, "cross-replica forward timeout before local fallback")
		heartbeat     = flag.Duration("heartbeat-interval", time.Second, "peer liveness probe interval for health-driven membership (0 disables)")
		suspectAfter  = flag.Int("suspect-after", 3, "consecutive failed probes before a ring member is evicted")
		replication   = flag.Int("replication", 1, "hot-key copy count R: owner plus R-1 ring successors hold each cached plan")
		escrow        = flag.Bool("escrow", false, "fleet-exact tenant budgets via the escrow ledger (off = per-replica approximation)")
		dataDir       = flag.String("data-dir", "", "durability directory for the escrow snapshot+WAL and the plan-cache dump (empty = memory only)")
		leaseTTL      = flag.Duration("escrow-lease-ttl", 15*time.Second, "escrow lease lifetime without a renewal before the owner reclaims it")
		leaseFraction = flag.Float64("escrow-lease-fraction", 0.1, "share of a tenant's budget one replica targets for its local lease")
		snapInterval  = flag.Duration("snapshot-interval", 30*time.Second, "how often the escrow WAL is folded into a fresh snapshot")
		logLevel      = flag.String("log-level", "info", "log level: debug, info, warn, or error")
		logSample     = flag.Int("log-sample", 1, "log every Nth request line (5xx always log)")
		debugAddr     = flag.String("debug-addr", "", "separate listener for /debug/pprof/ and /debug/traces (empty disables)")
		traceRing     = flag.Int("trace-ring", 0, "retained request traces for /debug/traces (0 = 256)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chronosd:", err)
		os.Exit(1)
	}
	// All operational logs are structured JSON on stderr, machine-parseable
	// by the same pipeline that ingests the request lines.
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	var tenants *tenant.Registry
	if *tenantsPath != "" {
		tenants, err = tenant.LoadFile(*tenantsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chronosd:", err)
			os.Exit(1)
		}
		logger.Info("tenants loaded", "pools", tenants.Len(), "path", *tenantsPath)
	}

	membership := ring.Membership{Self: *self, Peers: ring.ParsePeers(*peers)}
	if *ringPath != "" {
		if membership.Enabled() {
			fmt.Fprintln(os.Stderr, "chronosd: -ring is mutually exclusive with -self/-peers")
			os.Exit(1)
		}
		membership, err = ring.LoadFile(*ringPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chronosd:", err)
			os.Exit(1)
		}
	}
	if err := membership.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "chronosd:", err)
		os.Exit(1)
	}
	if membership.Enabled() {
		logger.Info("ring join",
			"self", ring.NormalizeURL(membership.Self),
			"members", len(membership.Members()))
	}

	var store *tenant.Store
	if *dataDir != "" {
		store, err = tenant.OpenStore(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chronosd:", err)
			os.Exit(1)
		}
		st := store.State()
		logger.Info("data dir opened", "path", *dataDir,
			"pools", len(st.Pools), "leases", len(st.Leases))
	}

	srv := server.New(server.Config{
		Addr:                   *addr,
		CacheCapacity:          *cacheCapacity,
		CacheShards:            *cacheShards,
		Workers:                *workers,
		MaxBodyBytes:           *maxBody,
		MaxBatchJobs:           *maxBatch,
		MaxSimJobs:             *maxSimJobs,
		MaxSimTasks:            *maxSimTasks,
		MaxSimTotalTasks:       *maxSimTotal,
		MaxReplayJobs:          *maxReplay,
		MaxActiveReplays:       *maxActive,
		ReadTimeout:            *readTimeout,
		WriteTimeout:           *writeTimeout,
		ShutdownGrace:          *grace,
		Tenants:                tenants,
		Self:                   membership.Self,
		Peers:                  membership.Peers,
		ForwardTimeout:         *forwardTO,
		HeartbeatInterval:      *heartbeat,
		SuspectAfter:           *suspectAfter,
		Replication:            *replication,
		Escrow:                 *escrow,
		Store:                  store,
		EscrowLeaseTTL:         *leaseTTL,
		EscrowLeaseFraction:    *leaseFraction,
		EscrowSnapshotInterval: *snapInterval,
		Logger:                 logger,
		LogSample:              *logSample,
		TraceRingSize:          *traceRing,
	})

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One SIGHUP reloads every file-backed config: tenant budgets and ring
	// membership share the reload path, so fleet-wide rollouts need one
	// signal per replica, not one per subsystem.
	if *tenantsPath != "" || *ringPath != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
					if *tenantsPath != "" {
						reloaded, err := tenant.LoadFile(*tenantsPath)
						if err != nil {
							logger.Error("SIGHUP tenant reload failed, keeping previous tenants",
								"path", *tenantsPath, "error", err.Error())
						} else {
							reloaded.Rebase(srv.Tenants())
							srv.SetTenants(reloaded)
							logger.Info("tenants reloaded (plan cache flushed)",
								"pools", reloaded.Len(), "path", *tenantsPath)
						}
					}
					if *ringPath != "" {
						m, err := ring.LoadFile(*ringPath)
						if err != nil {
							logger.Error("SIGHUP ring reload failed, keeping previous ring",
								"path", *ringPath, "error", err.Error())
						} else if err := srv.SetRing(m); err != nil {
							logger.Error("SIGHUP ring swap failed, keeping previous ring",
								"path", *ringPath, "error", err.Error())
						} else {
							logger.Info("ring membership reloaded",
								"path", *ringPath, "members", len(m.Members()))
						}
					}
				}
			}
		}()
	}

	// The debug surface gets its own listener: pprof handlers block for up
	// to their profiling window and must never contend with (or be exposed
	// on) the serving address.
	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: srv.DebugHandler()}
		go func() {
			<-ctx.Done()
			shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = dbg.Shutdown(shutCtx)
		}()
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener failed", "addr", *debugAddr, "error", err.Error())
			}
		}()
	}

	// A replica joining a sharded fleet warms the slice of the plan
	// keyspace it owns from its peers' caches, so a restart (or a reshard
	// that moved keys here) starts hot instead of cold. Concurrent with
	// serving: a plan that arrives before its warm copy is just solved once.
	if membership.Enabled() {
		go func() {
			warmCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
			srv.WarmFromPeers(warmCtx)
		}()
	}

	logger.Info("listening", "addr", *addr,
		"logLevel", level.String(), "logSample", *logSample,
		"escrow", *escrow, "dataDir", *dataDir)
	if err := srv.ListenAndServe(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "chronosd:", err)
		os.Exit(1)
	}
	// Graceful teardown: release escrow leases to their owners, compact the
	// ledger, dump the hot plan cache, then close the WAL.
	srv.Close()
	if err := store.Close(); err != nil {
		logger.Error("data dir close failed", "error", err.Error())
	}
	hits, misses, entries := srv.CacheStats()
	logger.Info("stopped",
		"cacheHits", hits, "cacheMisses", misses, "cacheEntries", entries)
}
