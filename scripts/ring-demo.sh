#!/usr/bin/env bash
# ring-demo.sh — boots 3 chronosd replicas joined into one consistent-hash
# ring and demonstrates the point of plan-key sharding: a plan computed via
# replica A is a cache hit when the same job is requested via replica B,
# because both forward the key to its single owning replica. It then sends a
# request with a caller-chosen X-Chronosd-Trace-Id through a non-owning
# replica and greps that ID out of BOTH replicas' structured logs — the
# out-of-process proof that one trace ID spans a forward hop. Then it proves
# the fleet self-manages: it SIGKILLs the plan owner, shows the very next
# request served WARM from the key's replica copy (-replication 2), waits for
# the survivors' health monitors to evict the dead member, restarts it, and
# asserts re-admission plus the warm cache handoff back. Finally it exercises
# the escrow failure path: it plants a lease at the tenant's pool owner,
# SIGKILLs that owner mid-run, restarts it from its data dir, and asserts the
# boot-time lease reclamation in the structured logs. Also used as the CI
# smoke step for the ring serving path (make ring-demo).
set -euo pipefail
cd "$(dirname "$0")/.."

PORT_BASE="${RING_DEMO_PORT_BASE:-18080}"
BIN="$(mktemp -d)/chronosd"
echo "== building chronosd =="
go build -o "$BIN" ./cmd/chronosd

PORTS=($((PORT_BASE + 1)) $((PORT_BASE + 2)) $((PORT_BASE + 3)))
PEERS=""
for p in "${PORTS[@]}"; do
  PEERS="${PEERS:+$PEERS,}http://127.0.0.1:$p"
done

LOG_DIR="$(mktemp -d)"
DATA_DIR="$(mktemp -d)"
TENANTS="$LOG_DIR/tenants.json"
cat > "$TENANTS" <<'EOF'
{"tenants": [{"name": "demo", "budget": 100000, "theta": 0.0001, "unitPrice": 1}]}
EOF
declare -A PID_OF
cleanup() {
  for p in "${!PID_OF[@]}"; do kill "${PID_OF[$p]}" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$(dirname "$BIN")" "$LOG_DIR" "$DATA_DIR"
}
trap cleanup EXIT

# start_replica <port> <logfile>: one escrow-enabled ring member with a
# per-port durable data dir. The short lease TTL keeps the reclamation
# demonstration below fast; the fast heartbeat and replication factor 2 keep
# the eviction/re-admission demonstration fast.
start_replica() {
  local p="$1" log="$2"
  "$BIN" -addr "127.0.0.1:$p" -self "http://127.0.0.1:$p" -peers "$PEERS" \
    -tenants "$TENANTS" -escrow -data-dir "$DATA_DIR/$p" \
    -escrow-lease-ttl 2s \
    -heartbeat-interval 500ms -suspect-after 3 -replication 2 2>"$log" &
  PID_OF[$p]=$!
}

wait_healthy() {
  local p="$1"
  for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$p/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "FAIL: replica on port $p never became healthy"
  exit 1
}

# Each replica's structured JSON logs go to a per-port file so the trace
# propagation check below can grep a specific replica's view of a request.
echo "== starting 3 replicas (ring: $PEERS; logs in $LOG_DIR) =="
for p in "${PORTS[@]}"; do
  start_replica "$p" "$LOG_DIR/$p.log"
done
for p in "${PORTS[@]}"; do
  wait_healthy "$p"
done

BODY='{"job":{"tasks":100,"deadline":3600,"tmin":40,"beta":1.6,"tauEst":300,"tauKill":600},"econ":{"theta":0.0001,"unitPrice":1}}'
A="http://127.0.0.1:${PORTS[0]}"
B="http://127.0.0.1:${PORTS[1]}"

echo "== plan via replica A ($A) =="
HDRS_A="$(mktemp)"
R1="$(curl -sf -D "$HDRS_A" -X POST -H 'Content-Type: application/json' -d "$BODY" "$A/v1/plan")"
echo "$R1"
OWNER="$(awk -F': ' 'tolower($1)=="x-chronosd-served-by" {gsub(/\r/,"",$2); print $2}' "$HDRS_A")"
echo "   served by: $OWNER"
grep -q '"cached":false' <<<"$R1" \
  || { echo "FAIL: first plan should not be cached"; exit 1; }

echo "== same job via replica B ($B) =="
HDRS_B="$(mktemp)"
R2="$(curl -sf -D "$HDRS_B" -X POST -H 'Content-Type: application/json' -d "$BODY" "$B/v1/plan")"
echo "$R2"
OWNER2="$(awk -F': ' 'tolower($1)=="x-chronosd-served-by" {gsub(/\r/,"",$2); print $2}' "$HDRS_B")"
echo "   served by: $OWNER2"
grep -q '"cached":true' <<<"$R2" \
  || { echo "FAIL: plan via B should hit the cache entry planned via A"; exit 1; }
[ "$OWNER" = "$OWNER2" ] \
  || { echo "FAIL: the two requests were served by different owners ($OWNER vs $OWNER2)"; exit 1; }
rm -f "$HDRS_A" "$HDRS_B"

echo "== ring metrics on replica A =="
curl -sf "$A/metrics" | grep '^chronosd_ring_'

# --- one trace ID across the forward hop -----------------------------------
# Send a request with an explicit trace ID through a replica that does NOT
# own the key (the owner is known from the requests above), then find that
# ID in the logs of both the entry replica and the owner.
ENTRY=""
for p in "${PORTS[@]}"; do
  [ "http://127.0.0.1:$p" != "$OWNER" ] && { ENTRY="http://127.0.0.1:$p"; break; }
done
OWNER_PORT="${OWNER##*:}"
ENTRY_PORT="${ENTRY##*:}"
TRACE_ID="ring-demo-$$"

echo "== traced plan via non-owner $ENTRY (trace ID $TRACE_ID) =="
HDRS_T="$(mktemp)"
curl -sf -D "$HDRS_T" -X POST -H 'Content-Type: application/json' \
  -H "X-Chronosd-Trace-Id: $TRACE_ID" -d "$BODY" "$ENTRY/v1/plan" >/dev/null
ECHOED="$(awk -F': ' 'tolower($1)=="x-chronosd-trace-id" {gsub(/\r/,"",$2); print $2}' "$HDRS_T")"
rm -f "$HDRS_T"
[ "$ECHOED" = "$TRACE_ID" ] \
  || { echo "FAIL: response echoed trace ID '$ECHOED', want '$TRACE_ID'"; exit 1; }

for port in "$ENTRY_PORT" "$OWNER_PORT"; do
  # Log writes are asynchronous to the HTTP response; give them a moment.
  for _ in $(seq 1 20); do
    grep -q "\"traceId\":\"$TRACE_ID\"" "$LOG_DIR/$port.log" 2>/dev/null && break
    sleep 0.1
  done
  grep -q "\"traceId\":\"$TRACE_ID\"" "$LOG_DIR/$port.log" \
    || { echo "FAIL: trace $TRACE_ID missing from replica :$port's request log"; exit 1; }
  echo "   replica :$port logged the trace:"
  grep "\"traceId\":\"$TRACE_ID\"" "$LOG_DIR/$port.log" | head -1 | sed 's/^/     /'
done
grep "\"traceId\":\"$TRACE_ID\"" "$LOG_DIR/$ENTRY_PORT.log" | grep -q '"forward"' \
  || { echo "FAIL: entry replica's log line has no forward span"; exit 1; }

echo
echo "OK: cross-replica cache hit — planned via A, hit via B, owned by $OWNER"
echo "OK: trace $TRACE_ID spans the forward hop ($ENTRY -> $OWNER)"

# --- health-driven membership: kill the owner, read from its replica -------
# With -replication 2 the owner pushed the hot plan to the key's first ring
# successor as it solved it. SIGKILL the owner: the next request through a
# survivor must be served WARM from that replica copy (cached:true — no cold
# re-solve), the survivors' heartbeat monitors must evict the dead member
# within the suspect window, and a restart must be re-admitted and receive
# the remapped hot entries back via the warm handoff.
echo
echo "== SIGKILL the plan owner (:$OWNER_PORT) =="
kill -9 "${PID_OF[$OWNER_PORT]}"
unset "PID_OF[$OWNER_PORT]"

WARM=""
for _ in $(seq 1 20); do
  R3="$(curl -sf -X POST -H 'Content-Type: application/json' -d "$BODY" "$ENTRY/v1/plan")" \
    || { sleep 0.2; continue; }
  grep -q '"cached":true' <<<"$R3" && { WARM=1; break; }
  sleep 0.2
done
[ -n "$WARM" ] \
  || { echo "FAIL: no survivor served the dead owner's hot key from a replica copy"; exit 1; }
REPLICA_READS="$(curl -sf "$ENTRY/metrics" \
  | awk '$1 == "chronosd_ring_replica_reads_total" {print $2}')"
[ "${REPLICA_READS:-0}" -ge 1 ] \
  || { echo "FAIL: chronosd_ring_replica_reads_total=${REPLICA_READS:-0} on $ENTRY, want >= 1"; exit 1; }
echo "   hot key served warm from its replica copy (replica_reads=$REPLICA_READS)"

SURVIVOR_LOGS=()
for p in "${PORTS[@]}"; do
  [ "$p" != "$OWNER_PORT" ] && SURVIVOR_LOGS+=("$LOG_DIR/$p.log")
done
for log in "${SURVIVOR_LOGS[@]}"; do
  for _ in $(seq 1 50); do
    grep -q 'ring member suspected, evicting' "$log" && break
    sleep 0.2
  done
  grep -q 'ring member suspected, evicting' "$log" \
    || { echo "FAIL: $(basename "$log") never evicted the dead member"; exit 1; }
done
echo "   both survivors evicted the dead member from their effective rings"

echo "== restarting the evicted member (:$OWNER_PORT) =="
start_replica "$OWNER_PORT" "$LOG_DIR/$OWNER_PORT.rejoin.log"
wait_healthy "$OWNER_PORT"
for log in "${SURVIVOR_LOGS[@]}"; do
  for _ in $(seq 1 50); do
    grep -q 'ring member recovered, re-admitting' "$log" && break
    sleep 0.2
  done
  grep -q 'ring member recovered, re-admitting' "$log" \
    || { echo "FAIL: $(basename "$log") never re-admitted the recovered member"; exit 1; }
done
HANDOFF=0
for p in "${PORTS[@]}"; do
  [ "$p" = "$OWNER_PORT" ] && continue
  n="$(curl -sf "http://127.0.0.1:$p/metrics" \
    | awk '$1 == "chronosd_ring_handoff_entries_total" {print $2}')"
  [ "${n:-0}" -ge 1 ] && HANDOFF="$n"
done
[ "$HANDOFF" -ge 1 ] \
  || { echo "FAIL: no survivor streamed remapped cache entries back (handoff_entries=0)"; exit 1; }
echo "   re-admitted; a survivor handed $HANDOFF remapped hot entries back"

echo
echo "OK: dead member evicted, hot key served from its replica, rejoin handed the keys back"

# --- escrow: kill the pool owner, assert lease reclamation -----------------
# Real admits flow through the fleet (non-owners of the tenant key lease
# escrow from the pool owner), then a deterministic lease is planted via the
# internal escrow API: the replica that answers 200 is the pool owner; the
# others answer 409/not_owner. The owner is then SIGKILLed mid-run — no
# graceful release, no final snapshot — and restarted from its data dir
# after the lease TTL. Boot replays the snapshot+WAL, finds the expired
# lease, and conservatively reclaims it: the log line is the proof.
echo
echo "== escrow: admits across the fleet (tenant 'demo') =="
for i in 1 2 3 4 5 6; do
  port="${PORTS[$((i % 3))]}"
  ADMIT_BODY="{\"tenant\":\"demo\",\"job\":{\"tasks\":$((90 + i)),\"deadline\":3600,\"tmin\":40,\"beta\":1.6,\"tauEst\":300,\"tauKill\":600}}"
  curl -sf -X POST -H 'Content-Type: application/json' -d "$ADMIT_BODY" \
    "http://127.0.0.1:$port/v1/admit" | grep -q '"admitted":true' \
    || { echo "FAIL: admit $i via :$port rejected"; exit 1; }
done

LEASE_BODY='{"tenant":"demo","holder":"http://ring-demo-holder.invalid:1","want":500}'
POOL_OWNER_PORT=""
for p in "${PORTS[@]}"; do
  code="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' -d "$LEASE_BODY" \
    "http://127.0.0.1:$p/v1/escrow/lease")"
  [ "$code" = "200" ] && POOL_OWNER_PORT="$p"
done
[ -n "$POOL_OWNER_PORT" ] \
  || { echo "FAIL: no replica granted the escrow lease (no pool owner?)"; exit 1; }
echo "   pool owner for tenant 'demo': 127.0.0.1:$POOL_OWNER_PORT"

echo "== SIGKILL the pool owner (:$POOL_OWNER_PORT), wait out the 2s lease TTL =="
kill -9 "${PID_OF[$POOL_OWNER_PORT]}"
unset "PID_OF[$POOL_OWNER_PORT]"
sleep 3

echo "== restarting the owner from $DATA_DIR/$POOL_OWNER_PORT =="
start_replica "$POOL_OWNER_PORT" "$LOG_DIR/$POOL_OWNER_PORT.restart.log"
wait_healthy "$POOL_OWNER_PORT"

for _ in $(seq 1 20); do
  grep -q 'escrow lease reclaimed at boot' "$LOG_DIR/$POOL_OWNER_PORT.restart.log" && break
  sleep 0.1
done
grep -q 'escrow lease reclaimed at boot' "$LOG_DIR/$POOL_OWNER_PORT.restart.log" \
  || { echo "FAIL: restarted owner never reclaimed the orphaned lease"; exit 1; }
echo "   reclaimed:"
grep 'escrow lease reclaimed at boot' "$LOG_DIR/$POOL_OWNER_PORT.restart.log" \
  | head -3 | sed 's/^/     /'

# The restarted owner's pool must reflect the pre-crash debits (level came
# back from snapshot+WAL, not from the config default).
LEVEL="$(curl -sf "http://127.0.0.1:$POOL_OWNER_PORT/metrics" \
  | awk '$1 == "chronosd_tenant_budget_remaining{tenant=\"demo\"}" {print $2}')"
echo "   restored pool level: ${LEVEL:-?} / 100000 machine-seconds"

echo
echo "OK: owner crash + restart reclaimed the orphaned escrow lease from the WAL"
