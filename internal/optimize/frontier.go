package optimize

import (
	"fmt"
	"math"

	"chronos/internal/analysis"
)

// Frontier is the precomputed form of SolveCapped for one (model, config)
// cell. Everything SolveCapped derives before it compares against the
// budget — the unconstrained optimum, the feasibility frontier rFeas, and
// the bounded scan window of (machine time, utility) points above it — is a
// pure function of the model and config alone. A warm cell therefore pays
// the bisection and the window's closed-form evaluations once, at table
// build time; each subsequent capped solve is a linear pass over the table
// with no model evaluations at all.
//
// Solve(budget) returns bit-identical results (and errors) to
// SolveCapped(m, cfg, budget) for every budget, which TestFrontierMatches
// SolveCapped pins down.
type Frontier struct {
	unconstrained Result
	points        []frontierPoint
	// cheapest is the lowest machine time among feasible window points —
	// SolveCapped's rejection detail ("need X, have Y").
	cheapest float64
}

// frontierPoint is one scanned r: the fields SolveCapped computes for it.
type frontierPoint struct {
	r           int
	machineTime float64
	utility     float64
	pocd        float64
	cost        float64
}

// NewFrontier precomputes the SolveCapped scan for one model and config.
// Errors are exactly Solve's: validation failures, or ErrInfeasible when no
// r is feasible regardless of budget (in which case no table can help).
func NewFrontier(m analysis.Model, cfg Config) (*Frontier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := m.Params().Validate(); err != nil {
		return nil, err
	}
	mm, pooled := acquire(m)
	if pooled {
		defer mm.release()
	}
	return newFrontierMemoized(mm, cfg)
}

// NewFrontierStrategy is NewFrontier for a (strategy, params) pair: the
// table is built through a pooled recurrence kernel, so construction costs
// one solve plus a sequential Advance walk of the scan window.
func NewFrontierStrategy(s analysis.Strategy, p analysis.Params, cfg Config) (*Frontier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mm := acquireStrategy(s, p)
	defer mm.release()
	return newFrontierMemoized(mm, cfg)
}

func newFrontierMemoized(m *memoModel, cfg Config) (*Frontier, error) {
	un, err := solveMemoized(m, cfg)
	if err != nil {
		return nil, err
	}

	// The window derivation mirrors SolveCapped exactly: bisect the
	// feasibility frontier anchored at the known-feasible un.R, then scan
	// [rFeas, min(un.R+margin, rFeas+cap)].
	rFeas, hi := cappedScanWindow(m, cfg, un.R)
	f := &Frontier{
		unconstrained: un,
		points:        make([]frontierPoint, 0, hi-rFeas+1),
		cheapest:      math.Inf(1),
	}
	for r := rFeas; r <= hi; r++ {
		pocd, mt, u := m.scanProbe(cfg, r)
		if !math.IsInf(u, -1) && mt < f.cheapest {
			f.cheapest = mt
		}
		f.points = append(f.points, frontierPoint{
			r:           r,
			machineTime: mt,
			utility:     u,
			pocd:        pocd,
			cost:        cfg.UnitPrice * mt,
		})
	}
	return f, nil
}

// Unconstrained returns the cell's unconstrained optimum — what SolveCapped
// returns whenever the budget covers it.
func (f *Frontier) Unconstrained() Result { return f.unconstrained }

// Solve answers SolveCapped(m, cfg, budget) from the table.
func (f *Frontier) Solve(budget float64) (Result, error) {
	if math.IsNaN(budget) {
		return Result{}, fmt.Errorf("optimize: budget is NaN")
	}
	if f.unconstrained.MachineTime <= budget {
		return f.unconstrained, nil
	}
	best := Result{R: -1, Utility: math.Inf(-1)}
	for _, p := range f.points {
		if p.machineTime > budget {
			continue
		}
		if p.utility > best.Utility {
			best = Result{
				Strategy:    f.unconstrained.Strategy,
				R:           p.r,
				Utility:     p.utility,
				PoCD:        p.pocd,
				MachineTime: p.machineTime,
				Cost:        p.cost,
			}
		}
	}
	if best.R < 0 || math.IsInf(best.Utility, -1) {
		return Result{}, fmt.Errorf("%w: need %v, have %v", ErrBudgetTooSmall, f.cheapest, budget)
	}
	return best, nil
}
