package tenant

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func mustRegistry(t *testing.T, limits map[string]Limits) *Registry {
	t.Helper()
	r, err := NewRegistry(limits)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegistryDefaultsAndLookup(t *testing.T) {
	r := mustRegistry(t, map[string]Limits{
		"etl":    {Budget: 100},
		"ad-hoc": {Budget: 50, Theta: 2e-3, UnitPrice: 3, RMin: 0.5},
	})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	etl := r.Get("etl")
	if etl == nil {
		t.Fatal("Get(etl) = nil")
	}
	if l := etl.Limits(); l.Theta != DefaultTheta || l.UnitPrice != DefaultUnitPrice {
		t.Errorf("defaults not applied: %+v", l)
	}
	if l := r.Get("ad-hoc").Limits(); l.Theta != 2e-3 || l.UnitPrice != 3 || l.RMin != 0.5 {
		t.Errorf("explicit limits mangled: %+v", l)
	}
	if r.Get("nope") != nil {
		t.Error("Get(nope) should be nil")
	}
	pools := r.Pools()
	if len(pools) != 2 || pools[0].Name() != "ad-hoc" || pools[1].Name() != "etl" {
		t.Errorf("Pools() not sorted by name: %v, %v", pools[0].Name(), pools[1].Name())
	}
}

func TestRegistryValidation(t *testing.T) {
	cases := map[string]Limits{
		"zero budget":     {Budget: 0},
		"negative budget": {Budget: -5},
		"negative refill": {Budget: 10, RefillPerSec: -1},
		"rmin too large":  {Budget: 10, RMin: 1},
		"negative theta":  {Budget: 10, Theta: -1},
	}
	for name, l := range cases {
		if _, err := NewRegistry(map[string]Limits{"t": l}); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	if _, err := NewRegistry(map[string]Limits{"": {Budget: 10}}); err == nil {
		t.Error("empty pool name: want error, got nil")
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	if r.Get("x") != nil || r.Pools() != nil || r.Len() != 0 {
		t.Error("nil registry accessors should return zero values")
	}
	r.Rebase(nil) // must not panic
}

func TestTryDebitSequential(t *testing.T) {
	p := mustRegistry(t, map[string]Limits{"t": {Budget: 10}}).Get("t")
	if ok, rem := p.TryDebit(4); !ok || rem != 6 {
		t.Fatalf("debit 4: ok=%v rem=%v, want true 6", ok, rem)
	}
	if ok, rem := p.TryDebit(6); !ok || rem != 0 {
		t.Fatalf("debit 6: ok=%v rem=%v, want true 0", ok, rem)
	}
	if ok, _ := p.TryDebit(0.001); ok {
		t.Fatal("debit on empty pool should fail")
	}
	if ok, rem := p.TryDebit(0); !ok || rem != 0 {
		t.Fatalf("zero-cost debit: ok=%v rem=%v, want true 0", ok, rem)
	}
	if ok, rem := p.TryDebit(-5); !ok || rem != 0 {
		t.Fatalf("negative-cost debit: ok=%v rem=%v, want true 0 (clamped)", ok, rem)
	}
}

// TestTryDebitConcurrentNoOvercommit hammers one pool from many goroutines
// and asserts the granted total never exceeds the budget: the ledger's core
// invariant.
func TestTryDebitConcurrentNoOvercommit(t *testing.T) {
	const budget = 100.0
	p := mustRegistry(t, map[string]Limits{"t": {Budget: budget}}).Get("t")

	const goroutines = 32
	const perG = 200
	granted := make([]float64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cost := 0.1 + float64(g%7)*0.31
			for i := 0; i < perG; i++ {
				if ok, _ := p.TryDebit(cost); ok {
					granted[g] += cost
				}
			}
		}(g)
	}
	wg.Wait()

	total := 0.0
	for _, v := range granted {
		total += v
	}
	if total > budget*(1+1e-9) {
		t.Fatalf("over-commit: granted %v from a budget of %v", total, budget)
	}
	if total == 0 {
		t.Fatal("nothing was granted")
	}
	if rem := p.Remaining(); rem < 0 {
		t.Fatalf("remaining went negative: %v", rem)
	}
	// Conservation: granted + remaining == budget (up to float accumulation).
	if rem := p.Remaining(); math.Abs(total+rem-budget) > 1e-6 {
		t.Errorf("ledger leak: granted %v + remaining %v != budget %v", total, rem, budget)
	}
}

func TestRefill(t *testing.T) {
	p := mustRegistry(t, map[string]Limits{"t": {Budget: 100, RefillPerSec: 10}}).Get("t")
	clock := p.led.last // start from the ledger's own epoch
	p.led.now = func() time.Time { return clock }

	if ok, _ := p.TryDebit(100); !ok {
		t.Fatal("initial debit should drain the full budget")
	}
	if ok, _ := p.TryDebit(1); ok {
		t.Fatal("empty pool granted a debit")
	}
	clock = clock.Add(2 * time.Second) // +20 machine seconds
	if got := p.Remaining(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("after 2s refill: remaining = %v, want 20", got)
	}
	clock = clock.Add(time.Hour) // refill clamps at capacity
	if got := p.Remaining(); got != 100 {
		t.Fatalf("refill must clamp at budget: remaining = %v, want 100", got)
	}
}

func TestRebase(t *testing.T) {
	old := mustRegistry(t, map[string]Limits{
		"kept":    {Budget: 100},
		"resized": {Budget: 100},
		"dropped": {Budget: 100},
	})
	old.Get("kept").TryDebit(70)
	old.Get("resized").TryDebit(70)

	next := mustRegistry(t, map[string]Limits{
		"kept":    {Budget: 100},
		"resized": {Budget: 40}, // ledger shape changed: starts full
		"fresh":   {Budget: 10},
	})
	next.Rebase(old)

	if got := next.Get("kept").Remaining(); got != 30 {
		t.Errorf("kept pool: remaining = %v, want carried-over 30", got)
	}
	if got := next.Get("resized").Remaining(); got != 40 {
		t.Errorf("resized pool: remaining = %v, want full 40", got)
	}
	if got := next.Get("fresh").Remaining(); got != 10 {
		t.Errorf("fresh pool: remaining = %v, want full 10", got)
	}
}

// TestRebaseSharesLedger pins the hot-reload race fix: requests still
// holding a pre-reload Pool must debit the same bucket the rebased Pool
// reads, so no grant is lost (and no budget reappears) across the swap.
func TestRebaseSharesLedger(t *testing.T) {
	old := mustRegistry(t, map[string]Limits{"kept": {Budget: 100}})
	next := mustRegistry(t, map[string]Limits{"kept": {Budget: 100, RMin: 0.9}})
	next.Rebase(old)

	// A debit through the old handle after the rebase...
	if ok, _ := old.Get("kept").TryDebit(60); !ok {
		t.Fatal("debit through the old pool failed")
	}
	// ...is visible through the new one, and vice versa.
	if got := next.Get("kept").Remaining(); got != 40 {
		t.Fatalf("new pool remaining = %v, want 40 (shared ledger)", got)
	}
	if ok, _ := next.Get("kept").TryDebit(40); !ok {
		t.Fatal("debit through the new pool failed")
	}
	if got := old.Get("kept").Remaining(); got != 0 {
		t.Fatalf("old pool remaining = %v, want 0 (shared ledger)", got)
	}
	// Planning defaults still come from the new declaration.
	if got := next.Get("kept").Limits().RMin; got != 0.9 {
		t.Errorf("rebased pool RMin = %v, want 0.9", got)
	}
}

func TestParse(t *testing.T) {
	r, err := Parse([]byte(`{
		"tenants": [
			{"name": "etl", "budget": 50000, "refillPerSec": 25, "rmin": 0.9},
			{"name": "ad-hoc", "budget": 5000}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if l := r.Get("etl").Limits(); l.RefillPerSec != 25 || l.RMin != 0.9 {
		t.Errorf("etl limits = %+v", l)
	}

	for name, doc := range map[string]string{
		"malformed":  `{not json`,
		"no tenants": `{"tenants": []}`,
		"unnamed":    `{"tenants": [{"budget": 5}]}`,
		"bad budget": `{"tenants": [{"name": "x", "budget": -1}]}`,
	} {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}

	_, err = Parse([]byte(`{"tenants": [
		{"name": "dup", "budget": 1}, {"name": "dup", "budget": 2}]}`))
	if !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate names: err = %v, want ErrDuplicate", err)
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(`{"tenants": [{"name": "a", "budget": 7}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	r, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Get("a").Remaining(); got != 7 {
		t.Errorf("remaining = %v, want 7", got)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file: want error, got nil")
	}
}
