package experiment

import (
	"chronos/internal/cluster"
	"chronos/internal/mapreduce"
	"chronos/internal/metrics"
	"chronos/internal/optimize"
	"chronos/internal/sim"
	"chronos/internal/speculate"
	"chronos/internal/workload"
)

// The failure-resilience experiment is an extension beyond the paper's
// tables: Section VII closes by noting that "S-Resume may not be possible in
// certain (extreme) scenarios such as system breakdown or VM crash, where
// only S-Restart is feasible". This experiment quantifies that remark by
// sweeping node MTBF and measuring how each strategy's PoCD and cost degrade
// when attempts are lost to node failures (all strategies here recover by
// relaunching from scratch — resume state dies with the node).

// FailureConfig parameterizes the sweep.
type FailureConfig struct {
	// MTBFs are the per-node mean-time-between-failures points (seconds);
	// 0 means no failures (the baseline column).
	MTBFs []float64
	// MTTR is the mean repair time (seconds).
	MTTR float64
	// Jobs and Tasks shape the batch per point.
	Jobs, Tasks int
	// Benchmark selects the workload profile.
	Benchmark workload.Profile
	// TauEst, TauKill, Theta, UnitPrice configure the Chronos strategies.
	TauEst, TauKill  float64
	Theta, UnitPrice float64
}

// DefaultFailureConfig sweeps from a stable cluster to one failing every
// few minutes per node.
func DefaultFailureConfig() FailureConfig {
	return FailureConfig{
		MTBFs:     []float64{0, 3600, 900, 300},
		MTTR:      60,
		Jobs:      100,
		Tasks:     10,
		Benchmark: workload.Sort,
		TauEst:    40,
		TauKill:   80,
		Theta:     1e-4,
		UnitPrice: 1,
	}
}

// FailureRow is one (MTBF, strategy) cell.
type FailureRow struct {
	MTBF     float64
	Strategy string
	PoCD     float64
	Cost     float64
	// Relaunches counts attempts lost to node failures across the batch.
	Relaunches int
}

// RunFailures executes the sweep over Hadoop-NS, S-Restart and S-Resume.
func RunFailures(r Runner, cfg FailureConfig) ([]FailureRow, error) {
	ccfg := speculate.ChronosConfig{
		TauEst:  cfg.TauEst,
		TauKill: cfg.TauKill,
		Opt:     optimize.Config{Theta: cfg.Theta, UnitPrice: cfg.UnitPrice},
		FixedR:  -1,
	}
	strategies := []mapreduce.Strategy{
		speculate.HadoopNS{},
		speculate.Restart{Config: ccfg},
		speculate.Resume{Config: ccfg},
	}
	var rows []FailureRow
	for _, mtbf := range cfg.MTBFs {
		for _, strat := range strategies {
			row, err := runFailureCell(r, cfg, mtbf, strat)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// runFailureCell executes one batch under one failure intensity. It builds
// the harness inline (rather than via Runner.run) because the injector must
// be installed on the cluster before jobs arrive.
func runFailureCell(r Runner, cfg FailureConfig, mtbf float64, strat mapreduce.Strategy) (FailureRow, error) {
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes:        r.Nodes,
		SlotsPerNode: r.SlotsPerNode,
		Seed:         r.Seed ^ 0xC10C0,
	})
	if err != nil {
		return FailureRow{}, err
	}
	rt := mapreduce.NewRuntime(eng, cl, mapreduce.Config{Seed: r.Seed})

	spacing := cfg.Benchmark.Deadline * 4
	if mtbf > 0 {
		cluster.FailureInjector{
			MTBF:    mtbf,
			MTTR:    cfg.MTTR,
			Horizon: float64(cfg.Jobs) * spacing * 2,
			Seed:    r.Seed ^ 0xFA11,
		}.Install(eng, cl)
	}

	var jobs []*mapreduce.Job
	for i := 0; i < cfg.Jobs; i++ {
		spec := cfg.Benchmark.JobSpec(i, cfg.Tasks, cfg.UnitPrice, float64(i)*spacing)
		job, err := rt.Submit(spec, strat)
		if err != nil {
			return FailureRow{}, err
		}
		jobs = append(jobs, job)
	}
	eng.Run()

	stats := metrics.NewStrategyStats(strat.Name())
	relaunches := 0
	for _, j := range jobs {
		if !j.Done {
			return FailureRow{}, errIncomplete(strat.Name(), j.Spec.ID)
		}
		stats.Observe(j)
		for _, t := range j.Tasks {
			for _, a := range t.Attempts {
				if a.State == mapreduce.AttemptFailed {
					relaunches++
				}
			}
		}
	}
	return FailureRow{
		MTBF:       mtbf,
		Strategy:   strat.Name(),
		PoCD:       stats.PoCD(),
		Cost:       stats.MeanCost(),
		Relaunches: relaunches,
	}, nil
}

// errIncomplete formats the stuck-job error.
func errIncomplete(strategy string, jobID int) error {
	return &incompleteJobError{strategy: strategy, jobID: jobID}
}

type incompleteJobError struct {
	strategy string
	jobID    int
}

func (e *incompleteJobError) Error() string {
	return "experiment: job did not complete under failures: " + e.strategy
}

// FailureTable renders the sweep.
func FailureTable(rows []FailureRow) *metrics.Table {
	t := metrics.NewTable("MTBF(s)", "Strategy", "PoCD", "Cost", "Lost attempts")
	for _, row := range rows {
		mtbf := "none"
		if row.MTBF > 0 {
			mtbf = metrics.FormatFloat(row.MTBF, 0)
		}
		t.AddRow(mtbf, row.Strategy,
			metrics.FormatFloat(row.PoCD, 3),
			metrics.FormatFloat(row.Cost, 1),
			metrics.FormatFloat(float64(row.Relaunches), 0))
	}
	return t
}
