// Command chronos-sim runs a trace-driven simulation of a strategy on a
// synthetic Google-like job stream and reports PoCD, cost, and utility —
// the scaled-up counterpart of the paper's 30-hour, 2700-job evaluation.
//
// The run streams: window summaries print as the replay progresses (the
// incremental event core, not a one-shot batch), and -events switches the
// output to the raw NDJSON event stream (job_planned, job_completed,
// window_summary, replay_summary) that chronosd's POST /v1/replay serves.
//
// Usage:
//
//	chronos-sim -strategy resume -jobs 270 -horizon 10800 -theta 1e-4 [-seed 1]
//	chronos-sim -strategy all    -jobs 270
//	chronos-sim -strategy resume -events | jq .
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"chronos"
)

var strategies = map[string]chronos.Strategy{
	"clone":   chronos.Clone,
	"restart": chronos.SpeculativeRestart,
	"resume":  chronos.SpeculativeResume,
	"ns":      chronos.HadoopNS,
	"hadoop":  chronos.HadoopS,
	"mantri":  chronos.Mantri,
	"late":    chronos.LATE,
}

func main() {
	var (
		strategy = flag.String("strategy", "resume", "clone, restart, resume, ns, hadoop, mantri, late, or all")
		jobs     = flag.Int("jobs", 270, "number of trace jobs")
		horizon  = flag.Float64("horizon", 3*3600, "arrival horizon (seconds)")
		ratio    = flag.Float64("deadline-ratio", 2, "deadline as a multiple of mean task time")
		theta    = flag.Float64("theta", 1e-4, "PoCD/cost tradeoff factor")
		price    = flag.Float64("price", 1, "VM unit price C")
		seed     = flag.Uint64("seed", 1, "root random seed")
		nodes    = flag.Int("nodes", 2048, "cluster nodes (8 slots each)")
		window   = flag.Float64("window", 900, "window_summary width in sim seconds (0 disables)")
		events   = flag.Bool("events", false, "emit the raw NDJSON event stream instead of progress lines")
	)
	flag.Parse()
	if err := run(*strategy, *jobs, *horizon, *ratio, *theta, *price, *seed, *nodes, *window, *events); err != nil {
		fmt.Fprintln(os.Stderr, "chronos-sim:", err)
		os.Exit(1)
	}
}

func run(strategy string, jobs int, horizon, ratio, theta, price float64, seed uint64, nodes int, window float64, events bool) error {
	stream, err := chronos.SyntheticTrace(chronos.TraceConfig{
		Jobs:           jobs,
		HorizonSeconds: horizon,
		DeadlineRatio:  ratio,
		Seed:           seed,
	})
	if err != nil {
		return err
	}
	totalTasks := 0
	for _, j := range stream {
		totalTasks += j.Tasks
	}
	if !events {
		fmt.Printf("trace: %d jobs, %d tasks, %.1f h horizon, deadline = %.1fx mean\n\n",
			len(stream), totalTasks, horizon/3600, ratio)
	}

	names := []string{strategy}
	if strategy == "all" {
		if events {
			return fmt.Errorf("-events needs a single strategy: seq numbers and summaries are per-stream")
		}
		names = names[:0]
		for n := range strategies {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	type row struct {
		s   chronos.Strategy
		rep chronos.Report
	}
	rows := make([]row, 0, len(names))
	enc := json.NewEncoder(os.Stdout)
	for _, name := range names {
		s, ok := strategies[name]
		if !ok {
			return fmt.Errorf("unknown strategy %q", name)
		}
		obs := chronos.ReplayObserverFunc(func(ev *chronos.ReplayEvent) error {
			if events {
				return enc.Encode(ev)
			}
			if ev.Kind == chronos.EventWindowSummary {
				w := ev.Window
				fmt.Printf("  [%s] t=%6.0fs  +%3d jobs  %d/%d done  PoCD %.3f  mean cost %.1f\n",
					s, w.End, w.Completed, w.Running.Jobs, w.Running.Submitted,
					w.Running.PoCD, w.Running.MeanCost)
			}
			return nil
		})
		rep, err := chronos.Replay(context.Background(), chronos.SimConfig{
			Strategy:     s,
			Seed:         seed,
			Econ:         chronos.Econ{Theta: theta, UnitPrice: price},
			Nodes:        nodes,
			SlotsPerNode: 8,
		}, stream, chronos.ReplayOptions{WindowSeconds: window, Observer: obs})
		if err != nil {
			return err
		}
		rows = append(rows, row{s, rep})
	}
	if events {
		return nil
	}
	fmt.Printf("\n%-22s %-8s %-12s %-10s\n", "strategy", "PoCD", "mean cost", "utility")
	fmt.Println(strings.Repeat("-", 56))
	for _, r := range rows {
		fmt.Printf("%-22s %-8.3f %-12.1f %-10.3f\n", r.s, r.rep.PoCD, r.rep.MeanCost, r.rep.Utility)
	}
	return nil
}
