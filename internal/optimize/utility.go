// Package optimize implements the joint PoCD / cost optimization of the
// Chronos paper (Section V): maximize the net utility
//
//	U(r) = log10(R(r) - Rmin) - theta * C * E(T)
//
// over the integer number r >= 0 of extra (clone/speculative) attempts,
// where R(r) is the strategy's PoCD and E(T) its expected machine running
// time. Algorithm 1 of the paper is implemented exactly: a gradient-based
// search on the region r > Gamma where the objective is provably concave
// (Theorem 8), plus an exhaustive scan of the finitely many integers below
// Gamma (Theorem 9 guarantees global optimality of the combination).
package optimize

import (
	"errors"
	"fmt"
	"math"

	"chronos/internal/analysis"
)

// Config carries the economic side of the optimization.
type Config struct {
	// Theta is the tradeoff factor between PoCD utility and execution cost.
	// Larger values weigh cost more heavily. Must be positive: with
	// theta == 0 the objective is unbounded in r.
	Theta float64
	// UnitPrice is the usage-based VM price C per unit machine time (e.g.
	// the average EC2 spot price for the subscribed VM type).
	UnitPrice float64
	// RMin is the minimum required PoCD; the utility drops to -Inf when
	// R(r) <= RMin. The paper uses the PoCD of Hadoop-NS as RMin in its
	// testbed experiments. May be zero.
	RMin float64
}

// Validation errors.
var (
	ErrBadTheta = errors.New("optimize: theta must be positive")
	ErrBadPrice = errors.New("optimize: unit price must be positive")
	ErrBadRMin  = errors.New("optimize: rmin must be in [0, 1)")
	// ErrInfeasible reports that no r achieves PoCD above RMin, so every
	// utility value is -Inf.
	ErrInfeasible = errors.New("optimize: no r achieves PoCD above RMin")
)

// Validate reports whether the configuration yields a well-posed problem.
func (c Config) Validate() error {
	if !(c.Theta > 0) {
		return fmt.Errorf("%w: got %v", ErrBadTheta, c.Theta)
	}
	if !(c.UnitPrice > 0) {
		return fmt.Errorf("%w: got %v", ErrBadPrice, c.UnitPrice)
	}
	if c.RMin < 0 || c.RMin >= 1 {
		return fmt.Errorf("%w: got %v", ErrBadRMin, c.RMin)
	}
	return nil
}

// Utility evaluates the net utility U(r) for the given analytic model.
// Returns -Inf when the PoCD does not exceed RMin.
func (c Config) Utility(m analysis.Model, r int) float64 {
	pocd := m.PoCD(r)
	if pocd <= c.RMin {
		return math.Inf(-1)
	}
	return c.utilityAt(pocd, m.MachineTime(r))
}

// utilityAt assembles U from already-evaluated metrics with exactly the
// operations Utility performs — c.Theta*c.UnitPrice*mt associates left, and
// changing the association changes low-order bits — so values produced
// either way are interchangeable in goldens and frontier tables.
func (c Config) utilityAt(pocd, mt float64) float64 {
	if pocd <= c.RMin {
		return math.Inf(-1)
	}
	return math.Log10(pocd-c.RMin) - c.Theta*c.UnitPrice*mt
}

// UtilityFromMeasured computes the same net utility from measured PoCD and
// cost (price-weighted machine time), as the evaluation section does for
// simulated and testbed runs.
func (c Config) UtilityFromMeasured(pocd, cost float64) float64 {
	if pocd <= c.RMin {
		return math.Inf(-1)
	}
	return math.Log10(pocd-c.RMin) - c.Theta*cost
}

// Point is one (r, PoCD, machine time, utility) sample of the tradeoff
// curve.
type Point struct {
	R           int
	PoCD        float64
	MachineTime float64
	Cost        float64 // UnitPrice * MachineTime
	Utility     float64
}

// Curve evaluates the tradeoff curve for r = 0..maxR inclusive. Useful for
// plotting the PoCD/cost frontier of Section V. Each closed form is
// evaluated exactly once per r: the points are built from scanProbe, which
// shares the PoCD/MachineTime evaluations between the point fields and the
// utility term (the naive loop evaluated PoCD twice per point — once for the
// field, once inside cfg.Utility).
func Curve(m analysis.Model, cfg Config, maxR int) []Point {
	mm, pooled := acquire(m)
	if pooled {
		defer mm.release()
	}
	return curveOn(mm, cfg, maxR)
}

// CurveStrategy is Curve for a (strategy, params) pair, evaluated through a
// pooled recurrence kernel with no interface boxing.
func CurveStrategy(s analysis.Strategy, p analysis.Params, cfg Config, maxR int) []Point {
	mm := acquireStrategy(s, p)
	defer mm.release()
	return curveOn(mm, cfg, maxR)
}

func curveOn(mm *memoModel, cfg Config, maxR int) []Point {
	pts := make([]Point, 0, maxR+1)
	for r := 0; r <= maxR; r++ {
		pocd, mt, u := mm.scanProbe(cfg, r)
		pts = append(pts, Point{
			R:           r,
			PoCD:        pocd,
			MachineTime: mt,
			Cost:        cfg.UnitPrice * mt,
			Utility:     u,
		})
	}
	return pts
}
