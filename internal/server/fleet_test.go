package server

import (
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"chronos/internal/ring"
)

// metricAtLeast parses the named counter from a metrics scrape and reports
// whether it reached min.
func metricAtLeast(text, prefix string, min int) bool {
	v, err := strconv.ParseFloat(metricValue(text, prefix), 64)
	return err == nil && v >= float64(min)
}

// TestFleetHealthEvictionReplicaReadAndHandoff is the tentpole acceptance
// scenario, run under -race:
//
//  1. A 3-replica fleet with heartbeat membership and replication factor 2
//     solves one plan; the owner asynchronously pushes the hot entry to the
//     key's first ring successor.
//  2. The owner's listener dies. A request for the key through the third
//     replica is served WARM from the successor's replica copy — no cold
//     solve — and counts as a ring replica read.
//  3. The survivors' health monitors evict the dead owner from their
//     effective rings within the suspect window.
//  4. The owner comes back on the same address; the survivors re-admit it,
//     and the successor hands the remapped hot entry back, so the owner
//     rejoins warm.
func TestFleetHealthEvictionReplicaReadAndHandoff(t *testing.T) {
	const n = 3
	servers := make([]*Server, n)
	httpSrvs := make([]*http.Server, n)
	urls := make([]string, n)
	solves := make([]atomic.Int32, n)

	// The fleet runs on real net.Listeners (not httptest) because the dead
	// owner's port must be re-bindable for the re-admission half.
	for i := 0; i < n; i++ {
		i := i
		servers[i] = New(Config{
			HeartbeatInterval: 50 * time.Millisecond,
			SuspectAfter:      3,
			ReadmitAfter:      2,
			Replication:       2,
			BreakerThreshold:  1,
			BreakerCooldown:   50 * time.Millisecond,
		})
		t.Cleanup(servers[i].Close)
		servers[i].solveHook = func(string) { solves[i].Add(1) }
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		urls[i] = "http://" + ln.Addr().String()
		httpSrvs[i] = &http.Server{Handler: servers[i].Handler()}
		go httpSrvs[i].Serve(ln)
		t.Cleanup(func() { httpSrvs[i].Close() })
	}
	for i := 0; i < n; i++ {
		if err := servers[i].SetRing(ring.Membership{Self: urls[i], Peers: urls}); err != nil {
			t.Fatalf("SetRing(replica %d): %v", i, err)
		}
	}
	totalSolves := func() int32 {
		var sum int32
		for i := range solves {
			sum += solves[i].Load()
		}
		return sum
	}

	// Locate the key's owner and first successor on the shared ring view.
	req := planRequest{Job: testJob(), Econ: testEcon()}
	key := planKey("", req.Job, req.Econ)
	succ := servers[0].ringSt.Load().ring.Successors(key, 2)
	if len(succ) != 2 {
		t.Fatalf("Successors(key, 2) = %v", succ)
	}
	idxOf := func(url string) int {
		for i, u := range urls {
			if u == url {
				return i
			}
		}
		t.Fatalf("%q is not a fleet member", url)
		return -1
	}
	owner, backup := idxOf(succ[0]), idxOf(succ[1])
	other := 3 - owner - backup // the replica holding neither copy

	// 1. Solve through the non-owning, non-backup replica: the owner
	// computes and caches, then replicates the hot entry to the backup.
	resp := postJSON(t, urls[other]+"/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("initial plan: status = %d, want 200", resp.StatusCode)
	}
	if first := decodeBody[planResponse](t, resp); first.Cached {
		t.Fatal("first fleet request cannot be cached")
	}
	if got := totalSolves(); got != 1 {
		t.Fatalf("initial plan cost %d solves, want 1", got)
	}
	waitFor(t, "replica copy on the backup", func() bool {
		return servers[backup].cache.peekBytes([]byte(key))
	})

	// 2. Kill the owner and immediately re-request the key through the
	// third replica: the forward walks owner (dead, breaker trips) then the
	// backup, which answers warm from its replica copy.
	if err := httpSrvs[owner].Close(); err != nil {
		t.Fatal(err)
	}
	servers[owner].FlushCache() // its in-process cache must not mask the handoff later
	resp = postJSON(t, urls[other]+"/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan with dead owner: status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(ServedByHeader); got != urls[backup] {
		t.Errorf("dead-owner plan served by %q, want backup %q", got, urls[backup])
	}
	warm := decodeBody[planResponse](t, resp)
	if !warm.Cached {
		t.Error("replica read must hit the backup's warm copy")
	}
	if got := totalSolves(); got != 1 {
		t.Errorf("owner death cost %d extra solves, want 0 (warm replica read)", got-1)
	}
	if text := getMetricsText(t, urls[other]); !metricAtLeast(text, "chronosd_ring_replica_reads_total", 1) {
		t.Errorf("chronosd_ring_replica_reads_total = %q on the forwarding replica, want >= 1",
			metricValue(text, "chronosd_ring_replica_reads_total"))
	}

	// 3. Both survivors evict the dead owner from their effective rings.
	for _, i := range []int{backup, other} {
		i := i
		waitFor(t, "eviction on replica "+strconv.Itoa(i), func() bool {
			_, members := servers[i].RingMembers()
			return len(members) == 2
		})
	}
	text := getMetricsText(t, urls[other])
	if !metricAtLeast(text, "chronosd_ring_evictions_total", 1) {
		t.Errorf("chronosd_ring_evictions_total = %q, want >= 1",
			metricValue(text, "chronosd_ring_evictions_total"))
	}
	failLine := "chronosd_ring_heartbeat_failures_total{peer=\"" + urls[owner] + "\"}"
	if !metricAtLeast(text, failLine, 1) {
		t.Errorf("%s = %q, want >= 1", failLine, metricValue(text, failLine))
	}

	// 4. Restart the owner on its old address: the survivors re-admit it
	// and the backup hands the remapped hot entry back.
	ln, err := net.Listen("tcp", urls[owner][len("http://"):])
	if err != nil {
		t.Fatal(err)
	}
	restarted := &http.Server{Handler: servers[owner].Handler()}
	go restarted.Serve(ln)
	t.Cleanup(func() { restarted.Close() })

	for _, i := range []int{backup, other} {
		i := i
		waitFor(t, "re-admission on replica "+strconv.Itoa(i), func() bool {
			_, members := servers[i].RingMembers()
			return len(members) == 3
		})
	}
	waitFor(t, "warm handoff back to the owner", func() bool {
		return servers[owner].cache.peekBytes([]byte(key))
	})
	text = getMetricsText(t, urls[other])
	if !metricAtLeast(text, "chronosd_ring_readmits_total", 1) {
		t.Errorf("chronosd_ring_readmits_total = %q, want >= 1",
			metricValue(text, "chronosd_ring_readmits_total"))
	}
	if bt := getMetricsText(t, urls[backup]); !metricAtLeast(bt, "chronosd_ring_handoff_entries_total", 1) {
		t.Errorf("chronosd_ring_handoff_entries_total = %q on the backup, want >= 1",
			metricValue(bt, "chronosd_ring_handoff_entries_total"))
	}

	// The whole death-and-rebirth cycle never re-solved the plan.
	if got := totalSolves(); got != 1 {
		t.Errorf("fleet performed %d solves across the cycle, want 1", got)
	}
}
