package tenant

import (
	"encoding/json"
	"fmt"
	"os"
)

// File is the on-disk tenant declaration loaded by chronosd's -tenants flag:
//
//	{
//	  "tenants": [
//	    {"name": "etl-nightly", "budget": 50000, "refillPerSec": 25,
//	     "theta": 1e-4, "unitPrice": 1, "rmin": 0.9},
//	    {"name": "ad-hoc", "budget": 5000}
//	  ]
//	}
//
// Zero theta/unitPrice take the package defaults; rmin defaults to 0 (any
// PoCD acceptable); refillPerSec 0 means a fixed budget.
type File struct {
	Tenants []PoolConfig `json:"tenants"`
}

// PoolConfig is one pool declaration: a name plus its Limits, flattened into
// a single JSON object.
type PoolConfig struct {
	Name string `json:"name"`
	Limits
}

// Parse decodes and validates a tenant config document.
func Parse(data []byte) (*Registry, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("tenant: invalid config: %w", err)
	}
	if len(f.Tenants) == 0 {
		return nil, fmt.Errorf("tenant: config declares no tenants")
	}
	limits := make(map[string]Limits, len(f.Tenants))
	for i, pc := range f.Tenants {
		if pc.Name == "" {
			return nil, fmt.Errorf("tenant: entry %d: name must be non-empty", i)
		}
		if _, dup := limits[pc.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicate, pc.Name)
		}
		limits[pc.Name] = pc.Limits
	}
	return NewRegistry(limits)
}

// LoadFile reads and parses the tenant config at path.
func LoadFile(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	return Parse(data)
}
