// Example admission starts an in-process chronosd instance with two tenant
// budget pools (loaded from the adjacent tenants.json, the same format the
// chronosd -tenants flag reads) and plays the paper's online setting
// through the chronos/client package: jobs arrive one at a time and
// client.Admit answers accept/reject plus a plan in one round trip,
// debiting each accepted plan's expected machine time from the tenant's
// ledger. Once the pool runs dry the optimizer first squeezes plans down to
// what the remaining budget affords, then rejects with a structured reason
// — and tenant-routed planning rejections surface as *client.Error carrying
// the unified envelope's code and trace ID.
//
// Run with:
//
//	go run ./examples/admission
package main

import (
	"context"
	_ "embed"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"

	"chronos"
	"chronos/client"
	"chronos/internal/server"
	"chronos/internal/tenant"
)

//go:embed tenants.json
var tenantsJSON []byte

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "admission:", err)
		os.Exit(1)
	}
}

func run() error {
	pools, err := tenant.Parse(tenantsJSON)
	if err != nil {
		return err
	}
	srv := server.New(server.Config{Tenants: pools})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	c := client.New("http://" + ln.Addr().String())
	fmt.Println("chronosd serving on", c.Replicas()[0])

	job := chronos.JobParams{
		Tasks: 10, Deadline: 100, TMin: 10, Beta: 1.5,
		TauEst: 30, TauKill: 60,
	}

	// A stream of identical deadline-critical jobs for one tenant. The
	// econ field is omitted: the pool's defaults (theta, unitPrice, rmin)
	// apply. Watch the ledger drain, the plans shrink, and the admissions
	// flip to structured rejections.
	fmt.Println("\n--- client.Admit until etl-nightly is exhausted ---")
	for i := 1; ; i++ {
		dec, err := c.Admit(ctx, client.AdmitRequest{Tenant: "etl-nightly", Job: job})
		if err != nil {
			return err
		}
		if dec.Admitted {
			fmt.Printf("job %2d: admitted r=%d machineTime=%.1f budgetRemaining=%.1f\n",
				i, dec.Plan.R, dec.Plan.MachineTime, dec.BudgetRemaining)
		} else {
			fmt.Printf("job %2d: rejected (%s) budgetRemaining=%.1f\n",
				i, dec.Reason, dec.BudgetRemaining)
			break
		}
		if i > 50 {
			return fmt.Errorf("pool never exhausted after %d admits", i)
		}
	}

	// The same ledger also backs tenant-routed planning: a plan with a
	// tenant field debits the pool, and once it cannot pay the client
	// surfaces the 429 envelope as a typed *client.Error.
	fmt.Println("\n--- client.Plan routed through the ad-hoc pool ---")
	for i := 1; i <= 3; i++ {
		plan, err := c.Plan(ctx, client.PlanRequest{Tenant: "ad-hoc", Job: job})
		var apiErr *client.Error
		switch {
		case errors.As(err, &apiErr):
			fmt.Printf("plan %d: %s code=%s traceId=%s\n",
				i, apiErr.Message, apiErr.Code, apiErr.TraceID)
		case err != nil:
			return err
		default:
			fmt.Printf("plan %d: r=%d machineTime=%.1f budgetRemaining=%.1f\n",
				i, plan.Plan.R, plan.Plan.MachineTime, *plan.BudgetRemaining)
		}
	}

	// Per-tenant observability: admits, rejects by reason, plans by
	// strategy, and the live ledger levels.
	fmt.Println("\n--- client.Metrics (tenant excerpt) ---")
	metricsText, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(metricsText, "\n") {
		if strings.HasPrefix(line, "chronosd_tenant_") {
			fmt.Println(line)
		}
	}

	cancel()
	return <-done
}
