package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"chronos/internal/tenant"
)

// The serving benchmarks measure plans per second through the full handler
// stack (routing, body limit, JSON decode, cache, optimize, JSON encode).
// Run with:
//
//	go test -bench=BenchmarkPlanHandler -benchmem ./internal/server/
//
// The cached benchmark replays one request body so every call after the
// first hits the sharded plan cache; the cold benchmark walks a parameter
// grid wider than the cache so every call solves Algorithm 1 for all three
// strategies. Their ratio is the cache's speedup on the hot path.

func benchBody(b *testing.B, deadline float64) []byte {
	b.Helper()
	job := testJob()
	job.Deadline = deadline
	raw, err := json.Marshal(planRequest{Job: job, Econ: testEcon()})
	if err != nil {
		b.Fatal(err)
	}
	return raw
}

func servePlan(b *testing.B, h http.Handler, body []byte) *httptest.ResponseRecorder {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	return rec
}

// BenchmarkPlanHandlerCached measures the hot path: repeated plans for the
// same (quantized) job served from the cache.
func BenchmarkPlanHandlerCached(b *testing.B) {
	s := New(Config{})
	h := s.Handler()
	body := benchBody(b, 100)
	servePlan(b, h, body) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		servePlan(b, h, body)
	}
	b.StopTimer()
	hits, _, _ := s.CacheStats()
	if hits < uint64(b.N) {
		b.Fatalf("only %d cache hits over %d requests", hits, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "plans/s")
}

// BenchmarkPlanHandlerCold measures the miss path: every request carries a
// distinct deadline drawn from a grid far wider than the cache, so each one
// runs the full three-strategy optimization.
func BenchmarkPlanHandlerCold(b *testing.B) {
	s := New(Config{CacheCapacity: 64})
	h := s.Handler()
	// 256 distinct deadlines in [100, 164): resolvable at six significant
	// digits, and cycling them through 64 LRU slots evicts each long
	// before it comes around again, so every request misses.
	bodies := make([][]byte, 256)
	for i := range bodies {
		bodies[i] = benchBody(b, 100+float64(i)*0.25)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		servePlan(b, h, bodies[i%len(bodies)])
	}
	b.StopTimer()
	_, misses, _ := s.CacheStats()
	if misses < uint64(b.N) {
		b.Fatalf("only %d cache misses over %d requests", misses, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "plans/s")
}

// BenchmarkAdmitHandler measures the online admission path: cached optimal
// plan plus an atomic ledger debit per request, against a pool deep enough
// to never reject. This is the per-arrival decision latency of the paper's
// online setting, tracked per PR in BENCH_*.json.
func BenchmarkAdmitHandler(b *testing.B) {
	reg, err := tenant.NewRegistry(map[string]tenant.Limits{
		"bench": {Budget: 1e18},
	})
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{Tenants: reg})
	h := s.Handler()
	raw, err := json.Marshal(admitRequest{Tenant: "bench", Job: testJob(), Econ: testEcon()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/admit", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "admits/s")
}

// BenchmarkAdmitHandlerEscrow is BenchmarkAdmitHandler with fleet-exact
// accounting on: the admit debits the escrow ledger's authoritative pool
// (owner path — a solo replica owns every tenant) instead of the bare token
// bucket. The delta against BenchmarkAdmitHandler is the price of exactness
// without durability.
func BenchmarkAdmitHandlerEscrow(b *testing.B) {
	reg, err := tenant.NewRegistry(map[string]tenant.Limits{
		"bench": {Budget: 1e18},
	})
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{Tenants: reg, Escrow: true})
	defer s.Close()
	h := s.Handler()
	raw, err := json.Marshal(admitRequest{Tenant: "bench", Job: testJob(), Econ: testEcon()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/admit", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "admits/s")
}

// BenchmarkAdmitHandlerEscrowWAL adds snapshot+WAL durability: every admit
// appends one debit record. The delta against BenchmarkAdmitHandlerEscrow is
// the WAL's cost on the admission path.
func BenchmarkAdmitHandlerEscrowWAL(b *testing.B) {
	reg, err := tenant.NewRegistry(map[string]tenant.Limits{
		"bench": {Budget: 1e18},
	})
	if err != nil {
		b.Fatal(err)
	}
	store, err := tenant.OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	s := New(Config{Tenants: reg, Escrow: true, Store: store})
	defer s.Close()
	h := s.Handler()
	raw, err := json.Marshal(admitRequest{Tenant: "bench", Job: testJob(), Econ: testEcon()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/admit", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "admits/s")
}

// BenchmarkAdmitBatchHandler measures batched admission: 16 warm-cache
// admissions settled in one ledger debit. Compare per-job cost against
// BenchmarkAdmitHandler to see what the batch amortizes.
func BenchmarkAdmitBatchHandler(b *testing.B) {
	reg, err := tenant.NewRegistry(map[string]tenant.Limits{
		"bench": {Budget: 1e18},
	})
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{Tenants: reg})
	h := s.Handler()
	jobs := make([]admitBatchJob, 16)
	for i := range jobs {
		job := testJob()
		job.Tasks = 5 + i
		jobs[i] = admitBatchJob{Job: job}
	}
	raw, err := json.Marshal(admitBatchRequest{Tenant: "bench", Jobs: jobs, Econ: testEcon()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/admit/batch", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(jobs))/b.Elapsed().Seconds(), "admits/s")
}

// BenchmarkBatchHandler measures a 64-job shared-budget allocation with
// best-of-three selection fanned out across the worker pool.
func BenchmarkBatchHandler(b *testing.B) {
	s := New(Config{})
	h := s.Handler()
	jobs := make([]batchJobRequest, 64)
	for i := range jobs {
		job := testJob()
		job.Tasks = 5 + i%20
		jobs[i] = batchJobRequest{Job: job}
	}
	raw, err := json.Marshal(batchRequest{Jobs: jobs, Budget: 500000, Econ: testEcon()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/plan/batch", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(jobs))/b.Elapsed().Seconds(), "plans/s")
}
