// Package cluster models the datacenter substrate Chronos schedules on:
// nodes with a fixed number of container slots, a FIFO allocation queue, a
// usage meter that converts container occupancy into machine time and cost
// (spot pricing), background resource contention that slows attempts down,
// and optional node-failure injection.
package cluster

import (
	"errors"
	"fmt"

	"chronos/internal/pareto"
	"chronos/internal/sim"
)

// Config describes a simulated cluster.
type Config struct {
	// Nodes is the number of worker nodes.
	Nodes int
	// SlotsPerNode is the number of concurrently running containers a node
	// supports (vCPUs in the paper's EC2 testbed: 8).
	SlotsPerNode int
	// Contention injects background load: an attempt placed on a node runs
	// slower by a sampled slowdown factor. Nil means no contention.
	Contention ContentionModel
	// Seed drives the contention randomness.
	Seed uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes < 1 || c.SlotsPerNode < 1 {
		return fmt.Errorf("cluster: need at least 1 node and 1 slot, got %d x %d",
			c.Nodes, c.SlotsPerNode)
	}
	return nil
}

// Node is one worker machine.
type Node struct {
	// ID is the node index.
	ID int

	slots  int
	used   int
	failed bool
	// live tracks outstanding containers, for failure revocation.
	live map[*Container]struct{}
}

// Slots returns the node's container capacity.
func (n *Node) Slots() int { return n.slots }

// Used returns the number of occupied slots.
func (n *Node) Used() int { return n.used }

// Failed reports whether the node has been failed by injection.
func (n *Node) Failed() bool { return n.failed }

// Container is a granted slot on a node. It is leased from Allocate/Request
// and returned with Release.
type Container struct {
	// Node hosting this container.
	Node *Node
	// AcquiredAt is the grant time, used by the meter.
	AcquiredAt float64
	// Slowdown is the contention factor sampled at grant time; execution on
	// this container takes Slowdown times the intrinsic duration.
	Slowdown float64

	onRevoke func()
	released bool
}

// ErrNoCapacity reports a synchronous allocation failure.
var ErrNoCapacity = errors.New("cluster: no free container")

// Cluster tracks slot occupancy, the allocation wait queue, machine-time
// metering, and failure state.
type Cluster struct {
	cfg   Config
	eng   *sim.Engine
	nodes []*Node
	// waiters holds pending Request callbacks, FIFO.
	waiters []func(*Container)
	meter   Meter
	rng     randState
}

// randState derives a fresh sub-seed per draw, keeping contention sampling
// deterministic without sharing a stream with the workload.
type randState struct {
	seed uint64
	n    uint64
}

func (r *randState) next() uint64 {
	r.n++
	return pareto.DeriveSeed(r.seed, r.n)
}

// New builds a cluster bound to the engine.
func New(eng *sim.Engine, cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:   cfg,
		eng:   eng,
		nodes: make([]*Node, cfg.Nodes),
		rng:   randState{seed: cfg.Seed},
	}
	for i := range c.nodes {
		c.nodes[i] = &Node{ID: i, slots: cfg.SlotsPerNode, live: make(map[*Container]struct{})}
	}
	return c, nil
}

// Meter exposes the usage meter.
func (c *Cluster) Meter() *Meter { return &c.meter }

// Capacity returns the total number of slots on live nodes.
func (c *Cluster) Capacity() int {
	total := 0
	for _, n := range c.nodes {
		if !n.failed {
			total += n.slots
		}
	}
	return total
}

// InUse returns the number of occupied slots.
func (c *Cluster) InUse() int {
	used := 0
	for _, n := range c.nodes {
		used += n.used
	}
	return used
}

// Nodes returns the node list (shared; callers must not mutate).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Allocate grants a container immediately or returns ErrNoCapacity. Nodes
// are filled least-loaded first, mirroring a spreading scheduler.
func (c *Cluster) Allocate() (*Container, error) {
	var best *Node
	for _, n := range c.nodes {
		if n.failed || n.used >= n.slots {
			continue
		}
		if best == nil || n.used < best.used {
			best = n
		}
	}
	if best == nil {
		return nil, ErrNoCapacity
	}
	best.used++
	slow := 1.0
	if c.cfg.Contention != nil {
		slow = c.cfg.Contention.Slowdown(c.eng.Now(), best.ID, c.rng.next())
	}
	ctr := &Container{Node: best, AcquiredAt: c.eng.Now(), Slowdown: slow}
	best.live[ctr] = struct{}{}
	return ctr, nil
}

// Request grants a container to fn as soon as one is available: immediately
// if there is capacity, otherwise when a container is released (FIFO).
func (c *Cluster) Request(fn func(*Container)) {
	if ctr, err := c.Allocate(); err == nil {
		fn(ctr)
		return
	}
	c.waiters = append(c.waiters, fn)
}

// QueueLength returns the number of waiting allocation requests.
func (c *Cluster) QueueLength() int { return len(c.waiters) }

// Release returns a container and charges its occupancy to the meter.
// Double release panics: it is always an accounting bug.
func (c *Cluster) Release(ctr *Container) {
	if ctr.released {
		panic("cluster: double release of container")
	}
	ctr.released = true
	c.meter.charge(c.eng.Now() - ctr.AcquiredAt)
	delete(ctr.Node.live, ctr)
	if !ctr.Node.failed {
		ctr.Node.used--
	}
	c.dispatch()
}

// dispatch hands freed capacity to waiting requests.
func (c *Cluster) dispatch() {
	for len(c.waiters) > 0 {
		ctr, err := c.Allocate()
		if err != nil {
			return
		}
		fn := c.waiters[0]
		c.waiters = c.waiters[1:]
		fn(ctr)
	}
}

// SetRevokeHandler registers fn to run if the container's node fails while
// the container is held. The handler must Release the container (usage up to
// the failure instant is charged normally).
func (ctr *Container) SetRevokeHandler(fn func()) { ctr.onRevoke = fn }

// FailNode marks a node failed and revokes its outstanding containers via
// their revoke handlers. Returns the number of revoked containers.
func (c *Cluster) FailNode(id int) (int, error) {
	if id < 0 || id >= len(c.nodes) {
		return 0, fmt.Errorf("cluster: no node %d", id)
	}
	n := c.nodes[id]
	if n.failed {
		return 0, nil
	}
	n.failed = true
	revoked := 0
	// Collect first: revoke handlers mutate n.live via Release.
	victims := make([]*Container, 0, len(n.live))
	for ctr := range n.live {
		victims = append(victims, ctr)
	}
	for _, ctr := range victims {
		revoked++
		if ctr.onRevoke != nil {
			ctr.onRevoke()
		}
	}
	return revoked, nil
}
