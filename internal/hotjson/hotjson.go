// Package hotjson is a hand-rolled, reflection-free JSON codec for the
// chronosd wire structs on the serving hot path: plan and admit requests
// and responses, chronos.Plan, and replay stream events.
//
// The encoders are append-style and byte-identical to encoding/json
// (declared field order, omitempty, HTML-escaped strings, ES6 float
// formatting, string-sorted map keys); the decoders accept exactly the
// inputs encoding/json accepts for the same structs (any field order,
// case-insensitive fallback matching, unknown-field skipping, null
// semantics, � replacement of invalid UTF-8). Both directions are
// fuzz-verified against encoding/json — see fuzz_test.go. Neither
// direction allocates on well-formed hot inputs: encoders append into a
// caller-owned buffer, and decoders resolve repeated strings through an
// optional Interner instead of allocating fresh copies.
package hotjson

import "chronos"

// Interner resolves a decoded string to a previously allocated string with
// identical bytes, letting hot decodes avoid a per-request allocation for
// recurring values (tenant names, strategy names). Implementations must
// return (s, true) only when s is byte-for-byte equal to b; returning
// (_, false) makes the decoder allocate a fresh copy.
type Interner interface {
	InternString(b []byte) (string, bool)
}

// PlanRequest mirrors the body of POST /v1/plan.
type PlanRequest struct {
	Job      chronos.JobParams `json:"job"`
	Econ     chronos.Econ      `json:"econ"`
	Strategy string            `json:"strategy,omitempty"`
	Tenant   string            `json:"tenant,omitempty"`
}

// PlanResponse mirrors the body answered by POST /v1/plan.
type PlanResponse struct {
	Plan            chronos.Plan `json:"plan"`
	Cached          bool         `json:"cached"`
	BudgetRemaining *float64     `json:"budgetRemaining,omitempty"`
}

// AdmitRequest mirrors the body of POST /v1/admit.
type AdmitRequest struct {
	Tenant   string            `json:"tenant"`
	Job      chronos.JobParams `json:"job"`
	Strategy string            `json:"strategy,omitempty"`
	Econ     chronos.Econ      `json:"econ,omitempty"`
}

// AdmitResponse mirrors the body answered by POST /v1/admit.
type AdmitResponse struct {
	Admitted        bool          `json:"admitted"`
	Tenant          string        `json:"tenant"`
	Plan            *chronos.Plan `json:"plan,omitempty"`
	Reason          string        `json:"reason,omitempty"`
	BudgetRemaining float64       `json:"budgetRemaining"`
}

// commonStrings interns the strategy vocabulary every request carries, so
// decoding {"strategy":"clone"} never allocates regardless of the caller's
// Interner. Keys and values are the same constant, so an interned result is
// always byte-identical to the input.
var commonStrings = map[string]string{}

func init() {
	for _, s := range []string{
		"best", "Best", "BEST",
		"Clone", "clone", "CLONE",
		"Speculative-Restart", "speculative-restart", "restart", "s-restart",
		"Speculative-Resume", "speculative-resume", "resume", "s-resume",
		"Hadoop-NS", "hadoop-ns", "hadoopns",
		"Hadoop-S", "hadoop-s", "hadoops",
		"Mantri", "mantri",
		"LATE", "late", "Late",
	} {
		commonStrings[s] = s
	}
}
