package analysis

// Clone is the analytic model of the Clone strategy: r+1 attempts of every
// task start at time zero; at tauKill the best-progress attempt is kept and
// the other r are killed.
type Clone struct {
	P Params
}

var _ Model = Clone{}

// Name implements Model.
func (Clone) Name() string { return "Clone" }

// Params implements Model.
func (c Clone) Params() Params { return c.P }

// PoCD implements Theorem 1:
//
//	R_Clone = [1 - (tmin/D)^(beta*(r+1))]^N.
//
// A task misses the deadline only if all r+1 independent attempts do, each
// with probability (tmin/D)^beta.
func (c Clone) PoCD(r int) float64 {
	p := c.P
	single := p.Task.Survival(p.Deadline)
	q := powInt(single, r+1)
	return pocdFromTaskFailure(q, p.N)
}

// MachineTime implements Theorem 2:
//
//	E_Clone(T) = N * [ r*tauKill + tmin + tmin/(beta*(r+1)-1) ].
//
// The r killed attempts each run for tauKill; the surviving attempt is the
// minimum of r+1 i.i.d. Pareto variables, whose mean is Lemma 1.
func (c Clone) MachineTime(r int) float64 {
	p := c.P
	perTask := float64(r)*p.TauKill + p.Task.ExpectedMin(r+1)
	return float64(p.N) * perTask
}

// Gamma implements the Theorem 8 threshold for Clone:
//
//	Gamma_Clone = ln(N) / (beta * ln(D/tmin)) - 1,
//
// i.e. PoCD is concave in r exactly when the per-task failure probability
// (tmin/D)^(beta*(r+1)) has dropped below 1/N.
func (c Clone) Gamma() float64 {
	p := c.P
	// Failure probability q(r) = A * rho^(r+c) with A=1, rho=(tmin/D)^beta,
	// c=1; concave iff q < 1/N.
	rho := p.Task.Survival(p.Deadline)
	return concavityThreshold(1, rho, 1, p.N)
}
