package mapreduce

import "math"

// Estimator predicts the absolute completion instant of a running attempt
// from its observable progress reports. Strategies use estimators both to
// detect stragglers at tauEst and to pick the surviving attempt at tauKill.
//
// Estimators see only what the AM sees: the latest progress Observation
// (continuous and exact by default; periodic and optionally noisy when the
// runtime is configured with ReportInterval/ReportNoise).
type Estimator func(a *Attempt, now float64) float64

// HadoopEstimator reproduces default Hadoop's completion-time estimate: it
// assumes the attempt has been processing since launch, so
//
//	tect = tlau + (tobs - tlau) / ownProgress.
//
// Because the elapsed time includes the JVM startup delay, the implied rate
// is too low and the estimate overshoots — the source of the false-positive
// straggler detections the paper fixes with Eq. 30.
func HadoopEstimator(a *Attempt, now float64) float64 {
	if a.State == AttemptFinished {
		return a.EndTime
	}
	obs := a.Observe(now)
	if !obs.Valid {
		return math.Inf(1) // no progress report yet
	}
	return a.LaunchTime + (obs.At-a.LaunchTime)/obs.Progress
}

// ChronosEstimator implements Eq. 30 of the paper: the JVM launch time is
// measured as tFP - tlau (first progress report minus launch) and excluded
// from the processing-rate estimate:
//
//	tect = tlau + (tFP - tlau) + (tobs - tFP) * (1 - FP) / (CP - FP)
//
// where FP and CP are the first and current reported progress. With map
// attempts starting from FP = 0 this is exactly the published Eq. 30; the
// (1 - FP) factor generalizes it to resumed attempts whose first report is
// already non-zero. Under continuous observation it is exact for
// linear-progress attempts; with periodic noisy reports its accuracy
// improves as observations accumulate, the tauEst tension of Table I.
func ChronosEstimator(a *Attempt, now float64) float64 {
	if a.State == AttemptFinished {
		return a.EndTime
	}
	tFP := a.JVMReady()
	obs := a.Observe(now)
	if !obs.Valid || obs.At <= tFP {
		return math.Inf(1) // no usable report yet
	}
	fp := 0.0 // attempts report their own-range progress, starting at 0
	cp := obs.Progress
	if cp <= fp {
		return math.Inf(1)
	}
	return tFP + (obs.At-tFP)*(1-fp)/(cp-fp)
}

// OracleEstimator returns the true finish time; used in tests and to bound
// the achievable accuracy of the practical estimators.
func OracleEstimator(a *Attempt, now float64) float64 {
	if a.State == AttemptFinished {
		return a.EndTime
	}
	return a.FinishTime()
}

// AnticipatedResumeFrac implements the speculative-launch offset of Eq. 31:
// when Speculative-Resume decides at tauEst to replace a straggler, the new
// attempts should skip not only the bytes already processed (best) but also
// the bytes the original would process while the new JVMs start up
// (bextra), estimated from the original's observed rate and startup delay:
//
//	bextra = best / (tauEst - tFP) * (tFP - tlau)
//	bnew   = bstart + best + bextra.
//
// The return value is the split fraction at which the new attempts begin.
// It is clamped to [current progress, 1].
func AnticipatedResumeFrac(a *Attempt, now float64) float64 {
	progress := a.Progress(now)
	tFP := a.JVMReady()
	obs := a.Observe(now)
	if !obs.Valid || obs.At <= tFP {
		return progress
	}
	// Observed fraction of this attempt's own range, converted to split
	// fraction.
	processedFrac := obs.Progress * (1 - a.StartFrac)
	rate := processedFrac / (obs.At - tFP)
	extra := rate * a.JVMDelay // fraction processed during the new attempt's startup
	frac := a.StartFrac + processedFrac + extra
	if frac > 1 {
		frac = 1
	}
	if frac < progress {
		frac = progress
	}
	return frac
}
